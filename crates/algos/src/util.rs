//! Shared helpers: array views spanning global and local storage, and
//! output extraction from finished computations.

use hbp_model::{Builder, Computation, GArray, LArray, Wordable};

/// A uniform view over a (possibly offset) global or local array, so the
/// matrix kernels can operate on input/output matrices (global) and on
/// execution-stack temporaries (local, Def 3.6) with the same code.
#[derive(Debug)]
pub enum View<T: Wordable> {
    /// Slice of a global array starting at element `offset`.
    G {
        /// Backing array.
        arr: GArray<T>,
        /// Element offset of this view's origin.
        offset: usize,
    },
    /// Slice of a local (stack) array starting at element `offset`.
    L {
        /// Backing local array.
        arr: LArray<T>,
        /// Element offset of this view's origin.
        offset: usize,
    },
}

impl<T: Wordable> Clone for View<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Wordable> Copy for View<T> {}

impl<T: Wordable> View<T> {
    /// View over a whole global array.
    pub fn g(arr: GArray<T>) -> Self {
        View::G { arr, offset: 0 }
    }

    /// View over a whole local array.
    pub fn l(arr: LArray<T>) -> Self {
        View::L { arr, offset: 0 }
    }

    /// A sub-view shifted by `delta` elements.
    pub fn shift(self, delta: usize) -> Self {
        match self {
            View::G { arr, offset } => View::G {
                arr,
                offset: offset + delta,
            },
            View::L { arr, offset } => View::L {
                arr,
                offset: offset + delta,
            },
        }
    }

    /// Read element `i` (relative to the view origin), recording accesses.
    pub fn read(self, b: &mut Builder, i: usize) -> T {
        match self {
            View::G { arr, offset } => b.read(arr, offset + i),
            View::L { arr, offset } => b.rarr(arr, offset + i),
        }
    }

    /// Write element `i` (relative to the view origin), recording accesses.
    pub fn write(self, b: &mut Builder, i: usize, v: T) {
        match self {
            View::G { arr, offset } => b.write(arr, offset + i, v),
            View::L { arr, offset } => b.warr(arr, offset + i, v),
        }
    }

    /// Read element `i` silently (no access recorded) — build-time
    /// planning only, e.g. SPMS splitter selection and partition cuts.
    pub fn peek(self, b: &Builder, i: usize) -> T {
        match self {
            View::G { arr, offset } => b.peek(arr, offset + i),
            View::L { arr, offset } => b.peek_arr(arr, offset + i),
        }
    }
}

/// Read the final contents of a global array out of a finished computation.
pub fn read_out<T: Wordable>(comp: &Computation, a: GArray<T>) -> Vec<T> {
    (0..a.len())
        .map(|i| {
            let base = (a.base() as usize) + i * T::WORDS;
            T::from_words(&comp.heap[base..base + T::WORDS])
        })
        .collect()
}

/// Integer `⌈log₂ x⌉` for `x ≥ 1`.
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1);
    if x == 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbp_model::BuildConfig;

    #[test]
    fn view_dispatches_global_and_local() {
        let comp = hbp_model::Builder::build(BuildConfig::default(), 4, |b| {
            let g = b.alloc::<u64>(4);
            let l = b.local_array::<u64>(4);
            let vg = View::g(g);
            let vl = View::l(l);
            vg.write(b, 1, 10);
            vl.write(b, 1, 20);
            assert_eq!(vg.read(b, 1), 10);
            assert_eq!(vl.read(b, 1), 20);
            let s = vg.shift(1);
            assert_eq!(s.read(b, 0), 10);
        });
        assert!(comp.work() >= 5);
    }

    #[test]
    fn read_out_extracts_results() {
        let mut handle = None;
        let comp = hbp_model::Builder::build(BuildConfig::default(), 4, |b| {
            let g = b.alloc::<u64>(3);
            for i in 0..3 {
                b.write(g, i, (i * i) as u64);
            }
            handle = Some(g);
        });
        assert_eq!(read_out(&comp, handle.unwrap()), vec![0, 1, 4]);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }
}
