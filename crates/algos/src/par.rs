//! Real-parallel implementations of the key algorithms, for wall-clock
//! benchmarking on actual hardware (experiment W1).
//!
//! Every kernel here expresses its parallelism as binary fork-join through
//! [`pjoin`], which makes the functions **backend-generic**:
//!
//! * called from inside a native pool worker (see
//!   [`hbp_sched::native::run_native`], selected by `HBP_BACKEND=native`
//!   at the executor layer), joins fork onto the worker's deque and are
//!   stolen by the pool's randomized work stealing — the practical
//!   analogue of the paper's RWS baseline executing the same fork-join
//!   structure the trace algorithms record;
//! * called anywhere else, joins go to `rayon::join` (the vendored shim
//!   runs both closures on scoped threads up to a depth budget).

use hbp_model::Cx;

use crate::layout::morton;

/// Sequential cutoff below which recursion stops forking.
const SEQ_CUTOFF: usize = 1 << 10;

/// Backend-dispatching join: the native pool's stealing deques when the
/// calling thread is a pool worker, rayon otherwise.
pub fn pjoin<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if hbp_sched::native::in_pool() {
        hbp_sched::native::join(a, b)
    } else {
        rayon::join(a, b)
    }
}

/// Apply `f` to disjoint `chunk`-width windows of `data` in parallel.
/// When `data.len()` is not a multiple of `chunk` the final window is
/// shorter — callees that require exact row lengths (e.g. the row FFTs,
/// where `n = k1·k2` guarantees exact division) must ensure divisibility
/// themselves.
fn for_each_chunk_par<T: Send, F>(data: &mut [T], chunk: usize, f: &F)
where
    F: Fn(&mut [T]) + Sync,
{
    if data.len() <= chunk {
        if !data.is_empty() {
            f(data);
        }
        return;
    }
    let chunks = data.len().div_ceil(chunk);
    let mid = (chunks / 2) * chunk;
    let (l, r) = data.split_at_mut(mid);
    pjoin(
        || for_each_chunk_par(l, chunk, f),
        || for_each_chunk_par(r, chunk, f),
    );
}

/// Parallel sum (M-Sum).
pub fn par_sum(a: &[u64]) -> u64 {
    if a.len() <= SEQ_CUTOFF {
        return a.iter().copied().fold(0u64, u64::wrapping_add);
    }
    let (l, r) = a.split_at(a.len() / 2);
    let (x, y) = pjoin(|| par_sum(l), || par_sum(r));
    x.wrapping_add(y)
}

/// Parallel inclusive prefix sums (two-pass, PS).
pub fn par_prefix(a: &[u64]) -> Vec<u64> {
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    // Pass 1: per-chunk sums, computed by forked subtrees.
    fn chunk_sums(a: &[u64], chunk: usize, out: &mut [u64]) {
        if out.len() == 1 {
            out[0] = a.iter().copied().fold(0u64, u64::wrapping_add);
            return;
        }
        let mid = out.len() / 2;
        let (ol, or) = out.split_at_mut(mid);
        let (al, ar) = a.split_at(mid * chunk);
        pjoin(|| chunk_sums(al, chunk, ol), || chunk_sums(ar, chunk, or));
    }
    // Pass 2: rescan each chunk with its exclusive offset.
    fn down_sweep(a: &[u64], out: &mut [u64], chunk: usize, offsets: &[u64]) {
        if offsets.len() == 1 {
            let mut acc = offsets[0];
            for (d, &x) in out.iter_mut().zip(a) {
                acc = acc.wrapping_add(x);
                *d = acc;
            }
            return;
        }
        let mid = offsets.len() / 2;
        let (fl, fr) = offsets.split_at(mid);
        let (ol, or) = out.split_at_mut(mid * chunk);
        let (al, ar) = a.split_at(mid * chunk);
        pjoin(
            || down_sweep(al, ol, chunk, fl),
            || down_sweep(ar, or, chunk, fr),
        );
    }
    let chunk = SEQ_CUTOFF.min(n.div_ceil(64)).max(1);
    let k = n.div_ceil(chunk);
    let mut sums = vec![0u64; k];
    chunk_sums(a, chunk, &mut sums);
    let mut offsets = vec![0u64; k];
    let mut acc = 0u64;
    for (o, s) in offsets.iter_mut().zip(&sums) {
        *o = acc;
        acc = acc.wrapping_add(*s);
    }
    let mut out = vec![0u64; n];
    down_sweep(a, &mut out, chunk, &offsets);
    out
}

/// In-place transpose of an `n×n` matrix in BI layout (MT), with joins
/// mirroring the BP recursion.
pub fn par_transpose_bi(a: &mut [f64], n: usize) {
    assert!(n.is_power_of_two() && a.len() == n * n);
    fn diag(a: &mut [f64], k: usize) {
        if k == 1 {
            return;
        }
        let h = k / 2;
        let q = h * h;
        if k * k <= SEQ_CUTOFF {
            let (tl, rest) = a.split_at_mut(q);
            let (tr, rest2) = rest.split_at_mut(q);
            let (bl, br) = rest2.split_at_mut(q);
            diag(tl, h);
            diag(br, h);
            swap_t(tr, bl, h);
            return;
        }
        let (tl, rest) = a.split_at_mut(q);
        let (tr, rest2) = rest.split_at_mut(q);
        let (bl, br) = rest2.split_at_mut(q);
        pjoin(
            || pjoin(|| diag(tl, h), || diag(br, h)),
            || swap_t(tr, bl, h),
        );
    }
    fn swap_t(x: &mut [f64], y: &mut [f64], k: usize) {
        if k == 1 {
            std::mem::swap(&mut x[0], &mut y[0]);
            return;
        }
        let h = k / 2;
        let q = h * h;
        let (x0, xr) = x.split_at_mut(q);
        let (x1, xr2) = xr.split_at_mut(q);
        let (x2, x3) = xr2.split_at_mut(q);
        let (y0, yr) = y.split_at_mut(q);
        let (y1, yr2) = yr.split_at_mut(q);
        let (y2, y3) = yr2.split_at_mut(q);
        if k * k * 2 <= SEQ_CUTOFF {
            swap_t(x0, y0, h);
            swap_t(x1, y2, h);
            swap_t(x2, y1, h);
            swap_t(x3, y3, h);
            return;
        }
        pjoin(
            || pjoin(|| swap_t(x0, y0, h), || swap_t(x1, y2, h)),
            || pjoin(|| swap_t(x2, y1, h), || swap_t(x3, y3, h)),
        );
    }
    diag(a, n);
}

/// Strassen multiplication of two `n×n` BI matrices (forked recursion),
/// falling back to naive multiplication below the cutoff.
pub fn par_strassen_bi(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert!(n.is_power_of_two() && a.len() == n * n && b.len() == n * n);
    fn naive_bi(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
        let mut c = vec![0.0; k * k];
        for i in 0..k {
            for l in 0..k {
                let x = a[morton(i as u64, l as u64) as usize];
                for j in 0..k {
                    c[morton(i as u64, j as u64) as usize] +=
                        x * b[morton(l as u64, j as u64) as usize];
                }
            }
        }
        c
    }
    fn add(x: &[f64], y: &[f64], coeff: f64) -> Vec<f64> {
        x.iter().zip(y).map(|(a, b)| a + coeff * b).collect()
    }
    fn rec(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
        if k * k <= SEQ_CUTOFF.min(64 * 64) || k <= 8 {
            return naive_bi(a, b, k);
        }
        let h = k / 2;
        let q = h * h;
        let (a11, a12, a21, a22) = (&a[..q], &a[q..2 * q], &a[2 * q..3 * q], &a[3 * q..]);
        let (b11, b12, b21, b22) = (&b[..q], &b[q..2 * q], &b[2 * q..3 * q], &b[3 * q..]);
        let ((m1, m2), ((m3, m4), (m5, (m6, m7)))) = pjoin(
            || {
                pjoin(
                    || rec(&add(a11, a22, 1.0), &add(b11, b22, 1.0), h),
                    || rec(&add(a21, a22, 1.0), b11, h),
                )
            },
            || {
                pjoin(
                    || {
                        pjoin(
                            || rec(a11, &add(b12, b22, -1.0), h),
                            || rec(a22, &add(b21, b11, -1.0), h),
                        )
                    },
                    || {
                        pjoin(
                            || rec(&add(a11, a12, 1.0), b22, h),
                            || {
                                pjoin(
                                    || rec(&add(a21, a11, -1.0), &add(b11, b12, 1.0), h),
                                    || rec(&add(a12, a22, -1.0), &add(b21, b22, 1.0), h),
                                )
                            },
                        )
                    },
                )
            },
        );
        let mut c = vec![0.0; k * k];
        let (c11, rest) = c.split_at_mut(q);
        let (c12, rest2) = rest.split_at_mut(q);
        let (c21, c22) = rest2.split_at_mut(q);
        for i in 0..q {
            c11[i] = m1[i] + m4[i] - m5[i] + m7[i];
            c12[i] = m3[i] + m5[i];
            c21[i] = m2[i] + m4[i];
            c22[i] = m1[i] - m2[i] + m3[i] + m6[i];
        }
        c
    }
    rec(a, b, n)
}

/// Six-step FFT with parallel row FFTs (any power-of-two length).
pub fn par_fft(x: &mut [Cx]) {
    let n = x.len();
    assert!(n.is_power_of_two());
    fn fft_rec(x: &mut [Cx]) {
        let n = x.len();
        if n == 1 {
            return;
        }
        if n == 2 {
            let (a, b) = (x[0], x[1]);
            x[0] = a + b;
            x[1] = a - b;
            return;
        }
        let m = n.trailing_zeros();
        let k1 = 1usize << m.div_ceil(2);
        let k2 = n / k1;
        let mut t = vec![Cx::default(); n];
        // 1. transpose k1×k2 -> t (k2×k1)
        for j1 in 0..k1 {
            for j2 in 0..k2 {
                t[j2 * k1 + j1] = x[j1 * k2 + j2];
            }
        }
        // 2. FFT rows of t
        if n > SEQ_CUTOFF {
            for_each_chunk_par(&mut t, k1, &fft_rec);
        } else {
            t.chunks_mut(k1).for_each(fft_rec);
        }
        // 3. twiddle
        for j2 in 0..k2 {
            for f1 in 0..k1 {
                let theta = -2.0 * std::f64::consts::PI * (j2 as f64) * (f1 as f64) / n as f64;
                t[j2 * k1 + f1] = t[j2 * k1 + f1] * Cx::cis(theta);
            }
        }
        // 4. transpose back
        for j2 in 0..k2 {
            for f1 in 0..k1 {
                x[f1 * k2 + j2] = t[j2 * k1 + f1];
            }
        }
        // 5. FFT rows of x
        if n > SEQ_CUTOFF {
            for_each_chunk_par(x, k2, &fft_rec);
        } else {
            x.chunks_mut(k2).for_each(fft_rec);
        }
        // 6. final transpose
        for f1 in 0..k1 {
            for f2 in 0..k2 {
                t[f2 * k1 + f1] = x[f1 * k2 + f2];
            }
        }
        x.copy_from_slice(&t);
    }
    fft_rec(x);
}

/// Parallel mergesort over `(key, payload)` pairs.
pub fn par_mergesort(data: &mut [(u64, u64)]) {
    if data.len() <= SEQ_CUTOFF {
        data.sort_by_key(|p| p.0);
        return;
    }
    let mid = data.len() / 2;
    let mut right: Vec<(u64, u64)> = data[mid..].to_vec();
    {
        let (l, _) = data.split_at_mut(mid);
        pjoin(|| par_mergesort(l), || par_mergesort(&mut right));
    }
    // merge l (in place prefix) and right into data
    let left: Vec<(u64, u64)> = data[..mid].to_vec();
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i].0 <= right[j].0 {
            data[k] = left[i];
            i += 1;
        } else {
            data[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        data[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        data[k] = right[j];
        j += 1;
        k += 1;
    }
}

/// Elements of a 64-byte cache line for `(u64, u64)` pairs — the native
/// analogue of the recorded SPMS's block-aligned output gaps.
const LINE_PAIRS: usize = 4;

/// Parallel SPMS (Sample, Partition and Merge Sort) over `(key, payload)`
/// pairs — the native counterpart of [`crate::spms`], stable on keys.
///
/// 1. ≈ `√n` chunks are sorted recursively in parallel;
/// 2. a deterministic regular sample of each sorted chunk yields the
///    splitters (PSRS-style — no randomness, so a fixed input gives a
///    fixed partition on every run);
/// 3. every chunk is cut at the splitters with an upper-bound search, so
///    equal keys land in one bucket (stability);
/// 4. the size-balanced buckets are merged in parallel into a **gapped**
///    scratch buffer whose bucket origins are cache-line aligned (no two
///    bucket writers share a line interior — the false-sharing story of
///    the paper, for real this time), then compacted back in parallel.
///
/// Degenerate samples (duplicate-heavy inputs) fall back to a stable
/// sequential sort of the whole slice — rare, deterministic, correct.
pub fn par_spms(data: &mut [(u64, u64)]) {
    let n = data.len();
    if n <= SEQ_CUTOFF {
        data.sort_by_key(|p| p.0); // stable
        return;
    }
    // 1. chunk sort
    let chunks = (n as f64).sqrt().ceil() as usize;
    let q = n.div_ceil(chunks);
    for_each_chunk_par(data, q, &par_spms);

    // 2. deterministic regular sample → splitters
    let nb = chunks;
    let mut sample: Vec<u64> = Vec::new();
    for chunk in data.chunks(q) {
        let len = chunk.len();
        let spp = len.min(nb);
        for t in 1..=spp {
            sample.push(chunk[(t * len / (spp + 1)).min(len - 1)].0);
        }
    }
    sample.sort_unstable();
    let mut splitters: Vec<u64> = (1..nb).map(|j| sample[j * sample.len() / nb]).collect();
    splitters.dedup();

    // 3. partition every chunk at the splitters (upper bound: equal keys
    // never straddle a bucket). cuts[c] holds chunk c's bucket borders.
    let nbuckets = splitters.len() + 1;
    let cuts: Vec<Vec<usize>> = data
        .chunks(q)
        .map(|chunk| {
            let mut borders = Vec::with_capacity(nbuckets + 1);
            borders.push(0);
            for &s in &splitters {
                borders.push(chunk.partition_point(|p| p.0 <= s));
            }
            borders.push(chunk.len());
            borders
        })
        .collect();
    let sizes: Vec<usize> = (0..nbuckets)
        .map(|j| cuts.iter().map(|b| b[j + 1] - b[j]).sum())
        .collect();
    if sizes.contains(&n) {
        // Degenerate splitters (e.g. almost-constant keys): fall back to
        // one stable sort; the chunks are pre-sorted runs it exploits.
        data.sort_by_key(|p| p.0);
        return;
    }

    // 4. merge each bucket's runs into the line-gapped scratch buffer.
    let mut gaps = Vec::with_capacity(nbuckets);
    let mut cap = 0usize;
    for &s in &sizes {
        gaps.push(cap);
        cap += s.div_ceil(LINE_PAIRS) * LINE_PAIRS;
    }
    let mut scratch: Vec<(u64, u64)> = vec![(0, 0); cap];
    {
        // Bucket j's runs, in chunk order (stability).
        let runs_of = |j: usize| -> Vec<&[(u64, u64)]> {
            data.chunks(q)
                .enumerate()
                .filter_map(|(c, chunk)| {
                    let (lo, hi) = (cuts[c][j], cuts[c][j + 1]);
                    (hi > lo).then_some(&chunk[lo..hi])
                })
                .collect()
        };
        // Parallel over buckets: split the scratch at gapped borders.
        fn over_buckets<F>(scratch: &mut [(u64, u64)], lo: usize, hi: usize, caps: &[usize], f: &F)
        where
            F: Fn(usize, &mut [(u64, u64)]) + Sync,
        {
            if hi - lo == 1 {
                f(lo, scratch);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let left_cap: usize = caps[lo..mid].iter().sum();
            let (l, r) = scratch.split_at_mut(left_cap);
            pjoin(
                || over_buckets(l, lo, mid, caps, f),
                || over_buckets(r, mid, hi, caps, f),
            );
        }
        let caps: Vec<usize> = sizes
            .iter()
            .map(|&s| s.div_ceil(LINE_PAIRS) * LINE_PAIRS)
            .collect();
        over_buckets(&mut scratch, 0, nbuckets, &caps, &|j, out| {
            merge_runs(&runs_of(j), &mut out[..sizes[j]]);
        });
    }

    // 5. parallel compaction: gapped scratch → contiguous data.
    fn compact(
        data: &mut [(u64, u64)],
        scratch: &[(u64, u64)],
        lo: usize,
        hi: usize,
        sizes: &[usize],
        gaps: &[usize],
    ) {
        if hi - lo == 1 {
            data.copy_from_slice(&scratch[gaps[lo]..gaps[lo] + sizes[lo]]);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let left: usize = sizes[lo..mid].iter().sum();
        let (l, r) = data.split_at_mut(left);
        pjoin(
            || compact(l, scratch, lo, mid, sizes, gaps),
            || compact(r, scratch, mid, hi, sizes, gaps),
        );
    }
    compact(data, &scratch, 0, nbuckets, &sizes, &gaps);
}

/// Stable k-way merge of sorted `runs` into `out` by pairwise ping-pong
/// rounds over two flat buffers — `O(m log k)` moves, two allocations
/// total (earlier runs win ties — run order is input order).
fn merge_runs(runs: &[&[(u64, u64)]], out: &mut [(u64, u64)]) {
    debug_assert_eq!(runs.iter().map(|r| r.len()).sum::<usize>(), out.len());
    if let [only] = runs {
        out.copy_from_slice(only);
        return;
    }
    if runs.is_empty() {
        return;
    }
    // Concatenate into the first ping-pong buffer, remembering the run
    // boundaries (out is only written by the final copy).
    let mut bounds: Vec<usize> = Vec::with_capacity(runs.len() + 1);
    bounds.push(0);
    let mut a: Vec<(u64, u64)> = Vec::with_capacity(out.len());
    for r in runs {
        a.extend_from_slice(r);
        bounds.push(a.len());
    }
    let mut b: Vec<(u64, u64)> = vec![(0, 0); out.len()];
    while bounds.len() > 2 {
        let mut nb: Vec<usize> = Vec::with_capacity(bounds.len() / 2 + 1);
        nb.push(0);
        let mut w = 0usize; // write cursor into b
        let mut r = 0usize; // run-pair cursor into bounds
        while r + 2 < bounds.len() {
            let (l0, l1, l2) = (bounds[r], bounds[r + 1], bounds[r + 2]);
            let (mut i, mut j) = (l0, l1);
            while i < l1 && j < l2 {
                if a[i].0 <= a[j].0 {
                    b[w] = a[i];
                    i += 1;
                } else {
                    b[w] = a[j];
                    j += 1;
                }
                w += 1;
            }
            while i < l1 {
                b[w] = a[i];
                i += 1;
                w += 1;
            }
            while j < l2 {
                b[w] = a[j];
                j += 1;
                w += 1;
            }
            nb.push(w);
            r += 2;
        }
        if r + 1 < bounds.len() {
            // Odd run out: carried over verbatim.
            b[w..bounds[r + 1]].copy_from_slice(&a[bounds[r]..bounds[r + 1]]);
            nb.push(bounds[r + 1]);
        }
        std::mem::swap(&mut a, &mut b);
        bounds = nb;
    }
    out.copy_from_slice(&a);
}

/// Parallel list ranking by pointer jumping (the practical baseline).
pub fn par_list_rank(succ: &[usize]) -> Vec<u64> {
    let n = succ.len();
    let mut s: Vec<usize> = succ.to_vec();
    let mut d: Vec<u64> = (0..n).map(|i| u64::from(succ[i] != i)).collect();
    // One jump round: ns[i] = s[s[i]], nd[i] = d[i] + d[s[i]], forked over
    // disjoint output windows (`off` = the window's global start index).
    fn jump(s: &[usize], d: &[u64], ns: &mut [usize], nd: &mut [u64], off: usize) {
        if ns.len() <= SEQ_CUTOFF {
            for i in 0..ns.len() {
                let g = off + i;
                ns[i] = s[s[g]];
                nd[i] = d[g] + d[s[g]];
            }
            return;
        }
        let mid = ns.len() / 2;
        let (nsl, nsr) = ns.split_at_mut(mid);
        let (ndl, ndr) = nd.split_at_mut(mid);
        pjoin(
            || jump(s, d, nsl, ndl, off),
            || jump(s, d, nsr, ndr, off + mid),
        );
    }
    let rounds = 64 - (n.max(2) as u64 - 1).leading_zeros();
    for _ in 0..rounds {
        let mut ns = vec![0usize; n];
        let mut nd = vec![0u64; n];
        jump(&s, &d, &mut ns, &mut nd, 0);
        s = ns;
        d = nd;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle;

    #[test]
    fn par_sum_and_prefix() {
        let a = gen::random_u64s(10_000, 1000, 1);
        assert_eq!(par_sum(&a), oracle::sum(&a));
        assert_eq!(par_prefix(&a), oracle::prefix_sums(&a));
    }

    #[test]
    fn par_prefix_odd_sizes_and_edges() {
        for n in [0usize, 1, 2, 63, 64, 65, 1023, 1025, 4097] {
            let a = gen::random_u64s(n, 1 << 40, n as u64 + 2);
            assert_eq!(par_prefix(&a), oracle::prefix_sums(&a), "n={n}");
        }
    }

    #[test]
    fn par_kernels_match_inside_native_pool() {
        // The same entry points must stay correct when their joins are
        // routed through the native work-stealing pool.
        let a = gen::random_u64s(20_000, 1000, 5);
        let cfg = hbp_sched::native::NativeConfig {
            workers: 3,
            seed: 11,
            ..Default::default()
        };
        let want_sum = oracle::sum(&a);
        let want_prefix = oracle::prefix_sums(&a);
        let ((got_sum, got_prefix), report) =
            hbp_sched::native::run_native(cfg, || (par_sum(&a), par_prefix(&a)));
        assert_eq!(got_sum, want_sum);
        assert_eq!(got_prefix, want_prefix);
        assert!(report.work > 1, "kernels forked tasks on the pool");
    }

    #[test]
    fn par_transpose_matches() {
        let n = 64;
        let rm = gen::random_matrix(n, 2);
        let mut bi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                bi[morton(r as u64, c as u64) as usize] = rm[r * n + c];
            }
        }
        par_transpose_bi(&mut bi, n);
        let want = oracle::transpose_rm(&rm, n);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(bi[morton(r as u64, c as u64) as usize], want[r * n + c]);
            }
        }
    }

    #[test]
    fn par_strassen_matches() {
        let n = 32;
        let a = gen::random_matrix(n, 3);
        let b = gen::random_matrix(n, 4);
        let mut abi = vec![0.0; n * n];
        let mut bbi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                abi[morton(r as u64, c as u64) as usize] = a[r * n + c];
                bbi[morton(r as u64, c as u64) as usize] = b[r * n + c];
            }
        }
        let cbi = par_strassen_bi(&abi, &bbi, n);
        let want = oracle::matmul_rm(&a, &b, n);
        for r in 0..n {
            for c in 0..n {
                let g = cbi[morton(r as u64, c as u64) as usize];
                assert!((g - want[r * n + c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn par_fft_matches_dft() {
        for n in [4usize, 8, 64, 128] {
            let x: Vec<Cx> = (0..n)
                .map(|i| Cx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut y = x.clone();
            par_fft(&mut y);
            let want = oracle::dft(&x);
            for i in 0..n {
                assert!(
                    (y[i].re - want[i].re).abs() < 1e-6 * n as f64
                        && (y[i].im - want[i].im).abs() < 1e-6 * n as f64,
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn par_fft_matches_dft_above_cutoff() {
        let n = 4096; // exercises the for_each_chunk_par row path
        let x: Vec<Cx> = (0..n)
            .map(|i| Cx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut y = x.clone();
        par_fft(&mut y);
        let want = oracle::dft(&x);
        for i in 0..n {
            assert!(
                (y[i].re - want[i].re).abs() < 1e-5 * n as f64
                    && (y[i].im - want[i].im).abs() < 1e-5 * n as f64,
                "i={i}"
            );
        }
    }

    #[test]
    fn par_sort_matches() {
        let keys = gen::random_u64s(5000, 10_000, 9);
        let mut data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 2)).collect();
        let want = oracle::sort_pairs(&data);
        par_mergesort(&mut data);
        assert_eq!(
            data.iter().map(|p| p.0).collect::<Vec<_>>(),
            want.iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_list_rank_matches() {
        let succ = gen::random_list(1000, 8);
        assert_eq!(par_list_rank(&succ), oracle::list_rank(&succ));
    }

    #[test]
    fn par_spms_sorts_stably_above_and_below_cutoff() {
        for n in [0usize, 1, 5, 100, 1025, 5000, 20_000] {
            let keys = gen::random_u64s(n, (n as u64 / 4).max(3), n as u64 + 1);
            let mut data: Vec<(u64, u64)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u64))
                .collect();
            let want = oracle::sort_pairs(&data);
            par_spms(&mut data);
            assert_eq!(data, want, "n={n} (payload equality = stability)");
        }
    }

    #[test]
    fn par_spms_duplicate_heavy_and_adversarial() {
        for n in [2048usize, 4099] {
            let all_equal: Vec<(u64, u64)> = (0..n as u64).map(|i| (7, i)).collect();
            let two_keys: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 2, i)).collect();
            let skew: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (if i == 0 { 0 } else { 9 }, i))
                .collect();
            let desc: Vec<(u64, u64)> = (0..n as u64).map(|i| (n as u64 - i, i)).collect();
            for base in [all_equal, two_keys, skew, desc] {
                let mut data = base.clone();
                let want = oracle::sort_pairs(&base);
                par_spms(&mut data);
                assert_eq!(data, want);
            }
        }
    }

    #[test]
    fn par_spms_matches_inside_native_pool() {
        let keys = gen::random_u64s(30_000, 500, 13);
        let mut data: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        let want = oracle::sort_pairs(&data);
        let cfg = hbp_sched::native::NativeConfig {
            workers: 3,
            seed: 21,
            ..Default::default()
        };
        let (_, report) = hbp_sched::native::run_native(cfg, || par_spms(&mut data));
        assert_eq!(data, want);
        assert!(report.work > 1, "SPMS forked tasks on the pool");
    }
}
