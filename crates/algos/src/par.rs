//! Real-parallel implementations of the key algorithms, for wall-clock
//! benchmarking on actual hardware (experiment W1).
//!
//! Every kernel here expresses its parallelism as binary fork-join through
//! [`pjoin`], which makes the functions **backend-generic**:
//!
//! * called from inside a native pool worker (see
//!   [`hbp_sched::native::run_native`], selected by `HBP_BACKEND=native`
//!   at the executor layer), joins fork onto the worker's deque and are
//!   stolen by the pool's randomized work stealing — the practical
//!   analogue of the paper's RWS baseline executing the same fork-join
//!   structure the trace algorithms record;
//! * called anywhere else, joins go to `rayon::join` (the vendored shim
//!   runs both closures on scoped threads up to a depth budget).

use hbp_model::Cx;

use crate::layout::morton;

/// Sequential cutoff below which recursion stops forking.
const SEQ_CUTOFF: usize = 1 << 10;

/// Backend-dispatching join: the native pool's stealing deques when the
/// calling thread is a pool worker, rayon otherwise.
pub fn pjoin<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if hbp_sched::native::in_pool() {
        hbp_sched::native::join(a, b)
    } else {
        rayon::join(a, b)
    }
}

/// Apply `f` to disjoint `chunk`-width windows of `data` in parallel.
/// When `data.len()` is not a multiple of `chunk` the final window is
/// shorter — callees that require exact row lengths (e.g. the row FFTs,
/// where `n = k1·k2` guarantees exact division) must ensure divisibility
/// themselves.
fn for_each_chunk_par<T: Send, F>(data: &mut [T], chunk: usize, f: &F)
where
    F: Fn(&mut [T]) + Sync,
{
    if data.len() <= chunk {
        if !data.is_empty() {
            f(data);
        }
        return;
    }
    let chunks = data.len().div_ceil(chunk);
    let mid = (chunks / 2) * chunk;
    let (l, r) = data.split_at_mut(mid);
    pjoin(
        || for_each_chunk_par(l, chunk, f),
        || for_each_chunk_par(r, chunk, f),
    );
}

/// Parallel sum (M-Sum).
pub fn par_sum(a: &[u64]) -> u64 {
    if a.len() <= SEQ_CUTOFF {
        return a.iter().copied().fold(0u64, u64::wrapping_add);
    }
    let (l, r) = a.split_at(a.len() / 2);
    let (x, y) = pjoin(|| par_sum(l), || par_sum(r));
    x.wrapping_add(y)
}

/// Parallel inclusive prefix sums (two-pass, PS).
pub fn par_prefix(a: &[u64]) -> Vec<u64> {
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    // Pass 1: per-chunk sums, computed by forked subtrees.
    fn chunk_sums(a: &[u64], chunk: usize, out: &mut [u64]) {
        if out.len() == 1 {
            out[0] = a.iter().copied().fold(0u64, u64::wrapping_add);
            return;
        }
        let mid = out.len() / 2;
        let (ol, or) = out.split_at_mut(mid);
        let (al, ar) = a.split_at(mid * chunk);
        pjoin(|| chunk_sums(al, chunk, ol), || chunk_sums(ar, chunk, or));
    }
    // Pass 2: rescan each chunk with its exclusive offset.
    fn down_sweep(a: &[u64], out: &mut [u64], chunk: usize, offsets: &[u64]) {
        if offsets.len() == 1 {
            let mut acc = offsets[0];
            for (d, &x) in out.iter_mut().zip(a) {
                acc = acc.wrapping_add(x);
                *d = acc;
            }
            return;
        }
        let mid = offsets.len() / 2;
        let (fl, fr) = offsets.split_at(mid);
        let (ol, or) = out.split_at_mut(mid * chunk);
        let (al, ar) = a.split_at(mid * chunk);
        pjoin(
            || down_sweep(al, ol, chunk, fl),
            || down_sweep(ar, or, chunk, fr),
        );
    }
    let chunk = SEQ_CUTOFF.min(n.div_ceil(64)).max(1);
    let k = n.div_ceil(chunk);
    let mut sums = vec![0u64; k];
    chunk_sums(a, chunk, &mut sums);
    let mut offsets = vec![0u64; k];
    let mut acc = 0u64;
    for (o, s) in offsets.iter_mut().zip(&sums) {
        *o = acc;
        acc = acc.wrapping_add(*s);
    }
    let mut out = vec![0u64; n];
    down_sweep(a, &mut out, chunk, &offsets);
    out
}

/// In-place transpose of an `n×n` matrix in BI layout (MT), with joins
/// mirroring the BP recursion.
pub fn par_transpose_bi(a: &mut [f64], n: usize) {
    assert!(n.is_power_of_two() && a.len() == n * n);
    fn diag(a: &mut [f64], k: usize) {
        if k == 1 {
            return;
        }
        let h = k / 2;
        let q = h * h;
        if k * k <= SEQ_CUTOFF {
            let (tl, rest) = a.split_at_mut(q);
            let (tr, rest2) = rest.split_at_mut(q);
            let (bl, br) = rest2.split_at_mut(q);
            diag(tl, h);
            diag(br, h);
            swap_t(tr, bl, h);
            return;
        }
        let (tl, rest) = a.split_at_mut(q);
        let (tr, rest2) = rest.split_at_mut(q);
        let (bl, br) = rest2.split_at_mut(q);
        pjoin(
            || pjoin(|| diag(tl, h), || diag(br, h)),
            || swap_t(tr, bl, h),
        );
    }
    fn swap_t(x: &mut [f64], y: &mut [f64], k: usize) {
        if k == 1 {
            std::mem::swap(&mut x[0], &mut y[0]);
            return;
        }
        let h = k / 2;
        let q = h * h;
        let (x0, xr) = x.split_at_mut(q);
        let (x1, xr2) = xr.split_at_mut(q);
        let (x2, x3) = xr2.split_at_mut(q);
        let (y0, yr) = y.split_at_mut(q);
        let (y1, yr2) = yr.split_at_mut(q);
        let (y2, y3) = yr2.split_at_mut(q);
        if k * k * 2 <= SEQ_CUTOFF {
            swap_t(x0, y0, h);
            swap_t(x1, y2, h);
            swap_t(x2, y1, h);
            swap_t(x3, y3, h);
            return;
        }
        pjoin(
            || pjoin(|| swap_t(x0, y0, h), || swap_t(x1, y2, h)),
            || pjoin(|| swap_t(x2, y1, h), || swap_t(x3, y3, h)),
        );
    }
    diag(a, n);
}

/// Strassen multiplication of two `n×n` BI matrices (forked recursion),
/// falling back to naive multiplication below the cutoff.
pub fn par_strassen_bi(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert!(n.is_power_of_two() && a.len() == n * n && b.len() == n * n);
    fn naive_bi(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
        let mut c = vec![0.0; k * k];
        for i in 0..k {
            for l in 0..k {
                let x = a[morton(i as u64, l as u64) as usize];
                for j in 0..k {
                    c[morton(i as u64, j as u64) as usize] +=
                        x * b[morton(l as u64, j as u64) as usize];
                }
            }
        }
        c
    }
    fn add(x: &[f64], y: &[f64], coeff: f64) -> Vec<f64> {
        x.iter().zip(y).map(|(a, b)| a + coeff * b).collect()
    }
    fn rec(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
        if k * k <= SEQ_CUTOFF.min(64 * 64) || k <= 8 {
            return naive_bi(a, b, k);
        }
        let h = k / 2;
        let q = h * h;
        let (a11, a12, a21, a22) = (&a[..q], &a[q..2 * q], &a[2 * q..3 * q], &a[3 * q..]);
        let (b11, b12, b21, b22) = (&b[..q], &b[q..2 * q], &b[2 * q..3 * q], &b[3 * q..]);
        let ((m1, m2), ((m3, m4), (m5, (m6, m7)))) = pjoin(
            || {
                pjoin(
                    || rec(&add(a11, a22, 1.0), &add(b11, b22, 1.0), h),
                    || rec(&add(a21, a22, 1.0), b11, h),
                )
            },
            || {
                pjoin(
                    || {
                        pjoin(
                            || rec(a11, &add(b12, b22, -1.0), h),
                            || rec(a22, &add(b21, b11, -1.0), h),
                        )
                    },
                    || {
                        pjoin(
                            || rec(&add(a11, a12, 1.0), b22, h),
                            || {
                                pjoin(
                                    || rec(&add(a21, a11, -1.0), &add(b11, b12, 1.0), h),
                                    || rec(&add(a12, a22, -1.0), &add(b21, b22, 1.0), h),
                                )
                            },
                        )
                    },
                )
            },
        );
        let mut c = vec![0.0; k * k];
        let (c11, rest) = c.split_at_mut(q);
        let (c12, rest2) = rest.split_at_mut(q);
        let (c21, c22) = rest2.split_at_mut(q);
        for i in 0..q {
            c11[i] = m1[i] + m4[i] - m5[i] + m7[i];
            c12[i] = m3[i] + m5[i];
            c21[i] = m2[i] + m4[i];
            c22[i] = m1[i] - m2[i] + m3[i] + m6[i];
        }
        c
    }
    rec(a, b, n)
}

/// Six-step FFT with parallel row FFTs (any power-of-two length).
pub fn par_fft(x: &mut [Cx]) {
    let n = x.len();
    assert!(n.is_power_of_two());
    fn fft_rec(x: &mut [Cx]) {
        let n = x.len();
        if n == 1 {
            return;
        }
        if n == 2 {
            let (a, b) = (x[0], x[1]);
            x[0] = a + b;
            x[1] = a - b;
            return;
        }
        let m = n.trailing_zeros();
        let k1 = 1usize << m.div_ceil(2);
        let k2 = n / k1;
        let mut t = vec![Cx::default(); n];
        // 1. transpose k1×k2 -> t (k2×k1)
        for j1 in 0..k1 {
            for j2 in 0..k2 {
                t[j2 * k1 + j1] = x[j1 * k2 + j2];
            }
        }
        // 2. FFT rows of t
        if n > SEQ_CUTOFF {
            for_each_chunk_par(&mut t, k1, &fft_rec);
        } else {
            t.chunks_mut(k1).for_each(fft_rec);
        }
        // 3. twiddle
        for j2 in 0..k2 {
            for f1 in 0..k1 {
                let theta = -2.0 * std::f64::consts::PI * (j2 as f64) * (f1 as f64) / n as f64;
                t[j2 * k1 + f1] = t[j2 * k1 + f1] * Cx::cis(theta);
            }
        }
        // 4. transpose back
        for j2 in 0..k2 {
            for f1 in 0..k1 {
                x[f1 * k2 + j2] = t[j2 * k1 + f1];
            }
        }
        // 5. FFT rows of x
        if n > SEQ_CUTOFF {
            for_each_chunk_par(x, k2, &fft_rec);
        } else {
            x.chunks_mut(k2).for_each(fft_rec);
        }
        // 6. final transpose
        for f1 in 0..k1 {
            for f2 in 0..k2 {
                t[f2 * k1 + f1] = x[f1 * k2 + f2];
            }
        }
        x.copy_from_slice(&t);
    }
    fft_rec(x);
}

/// Parallel mergesort over `(key, payload)` pairs.
pub fn par_mergesort(data: &mut [(u64, u64)]) {
    if data.len() <= SEQ_CUTOFF {
        data.sort_by_key(|p| p.0);
        return;
    }
    let mid = data.len() / 2;
    let mut right: Vec<(u64, u64)> = data[mid..].to_vec();
    {
        let (l, _) = data.split_at_mut(mid);
        pjoin(|| par_mergesort(l), || par_mergesort(&mut right));
    }
    // merge l (in place prefix) and right into data
    let left: Vec<(u64, u64)> = data[..mid].to_vec();
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i].0 <= right[j].0 {
            data[k] = left[i];
            i += 1;
        } else {
            data[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        data[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        data[k] = right[j];
        j += 1;
        k += 1;
    }
}

/// Elements of a 64-byte cache line for `(u64, u64)` pairs — the native
/// analogue of the recorded SPMS's block-aligned output gaps.
const LINE_PAIRS: usize = 4;

/// Consecutive takes from one side before [`merge2`] switches from the
/// select loop to a binary-search bulk copy.
const GALLOP: usize = 32;

/// Sorted-run width the sequential sort builds by insertion before its
/// merge rounds.
const SEQ_RUN: usize = 32;

/// Round `s` up to a whole number of cache lines of pairs.
const fn line_up(s: usize) -> usize {
    s.div_ceil(LINE_PAIRS) * LINE_PAIRS
}

/// Stable 2-way merge of the sorted runs `l` then `r` into `out`
/// (`l` wins key ties, so run order is input order).
///
/// The inner loop is branch-free on the comparison: the winning side is
/// picked by a boolean select the compiler lowers to conditional moves,
/// so random keys cost no branch mispredictions. Streak detection is
/// block-granular to keep that loop free of bookkeeping: after every
/// [`GALLOP`] plain selections the indices say whether one side won the
/// whole block (the other side's cursor did not move), and if so the
/// merge gallops — a binary search plus a bulk `copy_from_slice` — so
/// pre-sorted, skewed, and duplicate-heavy inputs degrade toward memcpy
/// instead of paying the element-at-a-time loop. Deliberately
/// unsafe-free: the bounds checks fold into the loop conditions, and
/// the `#[cfg(test)]` equivalence suite below pins this shape against a
/// naive reference merge.
fn merge2(l: &[(u64, u64)], r: &[(u64, u64)], out: &mut [(u64, u64)]) {
    debug_assert_eq!(l.len() + r.len(), out.len());
    let (mut i, mut j, mut w) = (0usize, 0usize, 0usize);
    while i < l.len() && j < r.len() {
        let (i0, j0) = (i, j);
        let mut steps = GALLOP;
        while steps > 0 && i < l.len() && j < r.len() {
            let take_l = l[i].0 <= r[j].0;
            out[w] = if take_l { l[i] } else { r[j] };
            i += take_l as usize;
            j += usize::from(!take_l);
            w += 1;
            steps -= 1;
        }
        if i < l.len() && j < r.len() {
            if j == j0 && i - i0 == GALLOP {
                // Left swept the whole block: everything still ≤ the
                // right head goes in one copy (ties stay left).
                let take = l[i..].partition_point(|p| p.0 <= r[j].0);
                out[w..w + take].copy_from_slice(&l[i..i + take]);
                i += take;
                w += take;
            } else if i == i0 && j - j0 == GALLOP {
                // Right sweep: strictly below the left head (ties left).
                let take = r[j..].partition_point(|p| p.0 < l[i].0);
                out[w..w + take].copy_from_slice(&r[j..j + take]);
                j += take;
                w += take;
            }
        }
    }
    out[w..w + (l.len() - i)].copy_from_slice(&l[i..]);
    out[w + (l.len() - i)..].copy_from_slice(&r[j..]);
}

/// Sequential stable sort by key using caller-provided scratch (no
/// allocation — the SPMS arena funds it): insertion-sorted base runs of
/// [`SEQ_RUN`], then bottom-up [`merge2`] rounds ping-ponging between
/// `data` and `scratch`, with a final copy-back only on odd round
/// parity.
fn seq_sort(data: &mut [(u64, u64)], scratch: &mut [(u64, u64)]) {
    let n = data.len();
    debug_assert!(scratch.len() >= n);
    for start in (0..n).step_by(SEQ_RUN) {
        let end = (start + SEQ_RUN).min(n);
        for i in start + 1..end {
            let v = data[i];
            let mut k = i;
            while k > start && data[k - 1].0 > v.0 {
                data[k] = data[k - 1];
                k -= 1;
            }
            data[k] = v;
        }
    }
    fn merge_round(src: &[(u64, u64)], dst: &mut [(u64, u64)], width: usize) {
        let n = src.len();
        let mut start = 0;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            merge2(&src[start..mid], &src[mid..end], &mut dst[start..end]);
            start = end;
        }
    }
    let scratch = &mut scratch[..n];
    let mut width = SEQ_RUN;
    let mut in_data = true;
    while width < n {
        if in_data {
            merge_round(data, scratch, width);
        } else {
            merge_round(scratch, data, width);
        }
        in_data = !in_data;
        width *= 2;
    }
    if !in_data {
        data.copy_from_slice(scratch);
    }
}

/// Scratch (in pairs) that [`spms_rec`] needs for a slice of `n`
/// elements: two line-gapped bucket arenas for the merge phases, or the
/// sum of the chunk sorts' needs — whichever is larger, since the two
/// phases never overlap in time. Sub-cutoff slices need `n` for
/// [`seq_sort`]'s ping-pong half.
fn arena_len(n: usize) -> usize {
    if n <= SEQ_CUTOFF {
        return n;
    }
    let chunks = (n as f64).sqrt().ceil() as usize;
    let q = n.div_ceil(chunks);
    let chunks = n.div_ceil(q);
    // ≤ one line of gap rounding per bucket, buckets ≤ chunks.
    let merge = 2 * (line_up(n) + chunks * LINE_PAIRS);
    let sort = chunks * arena_len(q);
    merge.max(sort)
}

/// Read-only geometry of one SPMS level, shared by the phase recursions.
struct SpmsCx<'a> {
    /// Chunk width of the level.
    q: usize,
    /// Row stride of `cuts` (`nbuckets + 1`).
    stride: usize,
    /// Row stride of the run-bounds arenas (max runs per bucket + 1).
    bstride: usize,
    /// Flattened per-chunk bucket borders, `stride`-strided by chunk.
    cuts: &'a [usize],
    /// Total size of each bucket.
    sizes: &'a [usize],
}

/// Merge phase A of one level: for the buckets `[blo, bhi)`, pairwise-
/// merge each bucket's sorted chunk-runs **straight out of `data`** into
/// the bucket's region of arena half `a` — the old concat-then-merge
/// first round and the per-bucket staging buffers, fused into one pass.
/// Run boundaries land in `bnd` (one `bstride` row per bucket) and the
/// surviving run count in `nrs`. Buckets split `a`/`bnd`/`nrs` along
/// line-gapped borders, so no two bucket writers share a cache-line
/// interior.
fn spms_phase_a(
    data: &[(u64, u64)],
    blo: usize,
    bhi: usize,
    a: &mut [(u64, u64)],
    bnd: &mut [usize],
    nrs: &mut [usize],
    cx: &SpmsCx<'_>,
) {
    if bhi - blo > 1 {
        let mid = blo + (bhi - blo) / 2;
        let cut: usize = cx.sizes[blo..mid].iter().map(|&s| line_up(s)).sum();
        let (al, ar) = a.split_at_mut(cut);
        let (bl, br) = bnd.split_at_mut((mid - blo) * cx.bstride);
        let (nl, nr) = nrs.split_at_mut(mid - blo);
        pjoin(
            || spms_phase_a(data, blo, mid, al, bl, nl, cx),
            || spms_phase_a(data, mid, bhi, ar, br, nr, cx),
        );
        return;
    }
    let j = blo;
    let nchunks = data.len().div_ceil(cx.q);
    let mut w = 0usize;
    let mut runs = 0usize;
    bnd[0] = 0;
    let mut pending: Option<&[(u64, u64)]> = None;
    for c in 0..nchunks {
        let base = c * cx.q;
        let (lo, hi) = (cx.cuts[c * cx.stride + j], cx.cuts[c * cx.stride + j + 1]);
        if hi <= lo {
            continue;
        }
        let run = &data[base + lo..base + hi];
        match pending.take() {
            None => pending = Some(run),
            Some(first) => {
                let len = first.len() + run.len();
                merge2(first, run, &mut a[w..w + len]);
                w += len;
                runs += 1;
                bnd[runs] = w;
            }
        }
    }
    if let Some(first) = pending {
        // Odd run out: lands in the arena verbatim this round.
        a[w..w + first.len()].copy_from_slice(first);
        w += first.len();
        runs += 1;
        bnd[runs] = w;
    }
    debug_assert_eq!(w, cx.sizes[j]);
    nrs[0] = runs;
}

/// Merge phase B of one level: ping-pong each bucket's surviving runs
/// between its regions of arena halves `a` and `b`, with the **final**
/// round writing directly into the bucket's destination window of
/// `data` — the fused compaction. A bucket already down to one run just
/// copies out (its only remaining pass *is* the compaction).
fn spms_phase_b(
    dest: &mut [(u64, u64)],
    blo: usize,
    bhi: usize,
    a: &mut [(u64, u64)],
    b: &mut [(u64, u64)],
    bnd_a: &mut [usize],
    bnd_b: &mut [usize],
    nrs: &[usize],
    cx: &SpmsCx<'_>,
) {
    if bhi - blo > 1 {
        let mid = blo + (bhi - blo) / 2;
        let gap_cut: usize = cx.sizes[blo..mid].iter().map(|&s| line_up(s)).sum();
        let dest_cut: usize = cx.sizes[blo..mid].iter().sum();
        let (dl, dr) = dest.split_at_mut(dest_cut);
        let (al, ar) = a.split_at_mut(gap_cut);
        let (bl, br) = b.split_at_mut(gap_cut);
        let (xal, xar) = bnd_a.split_at_mut((mid - blo) * cx.bstride);
        let (xbl, xbr) = bnd_b.split_at_mut((mid - blo) * cx.bstride);
        let (nl, nr) = nrs.split_at(mid - blo);
        pjoin(
            || spms_phase_b(dl, blo, mid, al, bl, xal, xbl, nl, cx),
            || spms_phase_b(dr, mid, bhi, ar, br, xar, xbr, nr, cx),
        );
        return;
    }
    let m = cx.sizes[blo];
    let dest = &mut dest[..m];
    let mut nr = nrs[0];
    let (mut src, mut dst) = (&mut a[..m], &mut b[..m]);
    let (mut bs, mut bd) = (&mut bnd_a[..], &mut bnd_b[..]);
    if nr <= 1 {
        dest.copy_from_slice(&src[..m]);
        return;
    }
    while nr > 2 {
        let mut w = 0usize;
        let mut out_runs = 0usize;
        bd[0] = 0;
        let mut t = 0usize;
        while t + 2 <= nr {
            let (l0, l1, l2) = (bs[t], bs[t + 1], bs[t + 2]);
            merge2(&src[l0..l1], &src[l1..l2], &mut dst[w..w + (l2 - l0)]);
            w += l2 - l0;
            out_runs += 1;
            bd[out_runs] = w;
            t += 2;
        }
        if t < nr {
            let (l0, l1) = (bs[t], bs[t + 1]);
            dst[w..w + (l1 - l0)].copy_from_slice(&src[l0..l1]);
            w += l1 - l0;
            out_runs += 1;
            bd[out_runs] = w;
        }
        nr = out_runs;
        std::mem::swap(&mut src, &mut dst);
        std::mem::swap(&mut bs, &mut bd);
    }
    // Exactly two runs left: this merge is the compaction.
    merge2(&src[bs[0]..bs[1]], &src[bs[1]..bs[2]], dest);
}

/// Recursive chunk-sort pass: apply [`spms_rec`] to each `q`-wide window
/// of `data`, carving each window's scratch out of the shared arena at a
/// uniform `per`-pair stride (the windows run concurrently, so their
/// scratch must be disjoint).
fn spms_sort_chunks(data: &mut [(u64, u64)], q: usize, arena: &mut [(u64, u64)], per: usize) {
    if data.len() <= q {
        if !data.is_empty() {
            spms_rec(data, arena);
        }
        return;
    }
    let chunks = data.len().div_ceil(q);
    let mid = chunks / 2;
    let (dl, dr) = data.split_at_mut(mid * q);
    let (al, ar) = arena.split_at_mut(mid * per);
    pjoin(
        || spms_sort_chunks(dl, q, al, per),
        || spms_sort_chunks(dr, q, ar, per),
    );
}

/// Parallel SPMS (Sample, Partition and Merge Sort) over `(key, payload)`
/// pairs — the native counterpart of [`crate::spms`], stable on keys.
///
/// 1. ≈ `√n` chunks are sorted recursively in parallel;
/// 2. a deterministic regular sample of each sorted chunk yields the
///    splitters (PSRS-style — no randomness, so a fixed input gives a
///    fixed partition on every run);
/// 3. every chunk is cut at the splitters with an upper-bound search, so
///    equal keys land in one bucket (stability);
/// 4. each size-balanced bucket's runs are pairwise-merged straight out
///    of `data` into a line-gapped ping-pong arena (phase A — the old
///    concatenate-then-merge staging pass, fused away), then ping-ponged
///    down to one run whose **final merge writes the bucket's window of
///    `data` directly** (phase B — the old separate compaction pass,
///    fused into the last round). Bucket origins are cache-line aligned
///    in both arena halves, so no two bucket writers share a line
///    interior — the false-sharing story of the paper, for real.
///
/// One arena allocation funds every merge round, the sequential leaf
/// sorts, and the whole recursion ([`arena_len`]) — the hot path
/// allocates O(1) buffers per super-cutoff level instead of O(√n) per
/// bucket, which `tests/alloc_accounting.rs` pins.
///
/// Degenerate samples (duplicate-heavy inputs) fall back to a stable
/// sequential sort of the whole slice — rare, deterministic, correct.
pub fn par_spms(data: &mut [(u64, u64)]) {
    if data.len() <= 1 {
        return;
    }
    let mut arena = vec![(0u64, 0u64); arena_len(data.len())];
    let m = hbp_metrics::global();
    if m.on() {
        // High-water mark of scratch reserved by any SPMS launch (one
        // check per sort call, far off the hot path).
        m.arena_bytes
            .raise_to((arena.len() * std::mem::size_of::<(u64, u64)>()) as i64);
    }
    spms_rec(data, &mut arena);
}

/// One SPMS level over `data`, with scratch (≥ [`arena_len`] of
/// `data.len()`) provided by the caller.
fn spms_rec(data: &mut [(u64, u64)], arena: &mut [(u64, u64)]) {
    let n = data.len();
    if n <= SEQ_CUTOFF {
        if n > 1 {
            seq_sort(data, &mut arena[..n]);
        }
        return;
    }
    // 1. chunk sort (concurrent sub-sorts carve the shared arena).
    let chunks = (n as f64).sqrt().ceil() as usize;
    let q = n.div_ceil(chunks);
    let nchunks = n.div_ceil(q);
    spms_sort_chunks(data, q, arena, arena_len(q));

    // 2. deterministic regular sample → splitters. Sampling every
    // element (spp = nb) gives the classic ≤ 2q bucket bound but costs
    // an O(n log n) sample sort — as much as the sort itself. A quarter
    // of that density keeps the bound at O(q) (≤ ~5q: between two
    // adjacent samples of one chunk sit ≤ len/(spp+1) elements, so a
    // bucket collects ≤ n/spp + its fair share) and makes the sample
    // sort noise instead of a phase.
    let nb = chunks;
    let mut sample: Vec<u64> = Vec::with_capacity(nchunks * nb);
    for chunk in data.chunks(q) {
        let len = chunk.len();
        let spp = len.min((nb / 4).max(32));
        for t in 1..=spp {
            sample.push(chunk[(t * len / (spp + 1)).min(len - 1)].0);
        }
    }
    sample.sort_unstable();
    let mut splitters: Vec<u64> = (1..nb).map(|j| sample[j * sample.len() / nb]).collect();
    splitters.dedup();

    // 3. partition every chunk at the splitters (upper bound: equal keys
    // never straddle a bucket). Row c of the flattened `cuts` holds
    // chunk c's bucket borders.
    let nbuckets = splitters.len() + 1;
    let stride = nbuckets + 1;
    let mut cuts = vec![0usize; nchunks * stride];
    for (c, chunk) in data.chunks(q).enumerate() {
        let row = &mut cuts[c * stride..(c + 1) * stride];
        // Splitters ascend and there are about as many as the chunk has
        // elements, so successive borders advance by ~1: one linear walk
        // over the chunk places every border in O(len + nbuckets) —
        // cheaper than nbuckets independent binary searches.
        let mut lo = 0usize;
        for (si, &s) in splitters.iter().enumerate() {
            while lo < chunk.len() && chunk[lo].0 <= s {
                lo += 1;
            }
            row[si + 1] = lo;
        }
        row[stride - 1] = chunk.len();
    }
    // Bucket sizes, accumulated row-major (the cuts layout) instead of
    // striding a column per bucket.
    let mut sizes = vec![0usize; nbuckets];
    for c in 0..nchunks {
        let row = &cuts[c * stride..(c + 1) * stride];
        for j in 0..nbuckets {
            sizes[j] += row[j + 1] - row[j];
        }
    }
    if sizes.contains(&n) {
        // Degenerate splitters (e.g. almost-constant keys): fall back to
        // one stable sequential sort out of the same arena.
        seq_sort(data, &mut arena[..n]);
        return;
    }

    // 4. the fused merge phases (see the function docs above): phase A
    // reads `data` into arena half A, the barrier between the two pjoin
    // trees retires `data` as a source, phase B ping-pongs A↔B and
    // lands the final round of every bucket in its `data` window.
    let cap: usize = sizes.iter().map(|&s| line_up(s)).sum();
    // Phase A halves runs once, so a bucket holds ≤ ⌈nchunks/2⌉ runs.
    let bstride = nchunks / 2 + 2;
    let mut bnd = vec![0usize; 2 * nbuckets * bstride];
    let mut nrs = vec![0usize; nbuckets];
    let cx = SpmsCx {
        q,
        stride,
        bstride,
        cuts: &cuts,
        sizes: &sizes,
    };
    let (half_a, rest) = arena.split_at_mut(cap);
    let half_b = &mut rest[..cap];
    let (bnd_a, bnd_b) = bnd.split_at_mut(nbuckets * bstride);
    spms_phase_a(data, 0, nbuckets, half_a, bnd_a, &mut nrs, &cx);
    spms_phase_b(data, 0, nbuckets, half_a, half_b, bnd_a, bnd_b, &nrs, &cx);
}

/// Parallel list ranking by pointer jumping (the practical baseline).
pub fn par_list_rank(succ: &[usize]) -> Vec<u64> {
    let n = succ.len();
    let mut s: Vec<usize> = succ.to_vec();
    let mut d: Vec<u64> = (0..n).map(|i| u64::from(succ[i] != i)).collect();
    // One jump round: ns[i] = s[s[i]], nd[i] = d[i] + d[s[i]], forked over
    // disjoint output windows (`off` = the window's global start index).
    fn jump(s: &[usize], d: &[u64], ns: &mut [usize], nd: &mut [u64], off: usize) {
        if ns.len() <= SEQ_CUTOFF {
            for i in 0..ns.len() {
                let g = off + i;
                ns[i] = s[s[g]];
                nd[i] = d[g] + d[s[g]];
            }
            return;
        }
        let mid = ns.len() / 2;
        let (nsl, nsr) = ns.split_at_mut(mid);
        let (ndl, ndr) = nd.split_at_mut(mid);
        pjoin(
            || jump(s, d, nsl, ndl, off),
            || jump(s, d, nsr, ndr, off + mid),
        );
    }
    let rounds = 64 - (n.max(2) as u64 - 1).leading_zeros();
    for _ in 0..rounds {
        let mut ns = vec![0usize; n];
        let mut nd = vec![0u64; n];
        jump(&s, &d, &mut ns, &mut nd, 0);
        s = ns;
        d = nd;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle;

    #[test]
    fn par_sum_and_prefix() {
        let a = gen::random_u64s(10_000, 1000, 1);
        assert_eq!(par_sum(&a), oracle::sum(&a));
        assert_eq!(par_prefix(&a), oracle::prefix_sums(&a));
    }

    #[test]
    fn par_prefix_odd_sizes_and_edges() {
        for n in [0usize, 1, 2, 63, 64, 65, 1023, 1025, 4097] {
            let a = gen::random_u64s(n, 1 << 40, n as u64 + 2);
            assert_eq!(par_prefix(&a), oracle::prefix_sums(&a), "n={n}");
        }
    }

    #[test]
    fn par_kernels_match_inside_native_pool() {
        // The same entry points must stay correct when their joins are
        // routed through the native work-stealing pool.
        let a = gen::random_u64s(20_000, 1000, 5);
        let cfg = hbp_sched::native::NativeConfig {
            workers: 3,
            seed: 11,
            ..Default::default()
        };
        let want_sum = oracle::sum(&a);
        let want_prefix = oracle::prefix_sums(&a);
        let ((got_sum, got_prefix), report) =
            hbp_sched::native::NativePool::run(cfg, || (par_sum(&a), par_prefix(&a)));
        assert_eq!(got_sum, want_sum);
        assert_eq!(got_prefix, want_prefix);
        assert!(report.work > 1, "kernels forked tasks on the pool");
    }

    #[test]
    fn par_transpose_matches() {
        let n = 64;
        let rm = gen::random_matrix(n, 2);
        let mut bi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                bi[morton(r as u64, c as u64) as usize] = rm[r * n + c];
            }
        }
        par_transpose_bi(&mut bi, n);
        let want = oracle::transpose_rm(&rm, n);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(bi[morton(r as u64, c as u64) as usize], want[r * n + c]);
            }
        }
    }

    #[test]
    fn par_strassen_matches() {
        let n = 32;
        let a = gen::random_matrix(n, 3);
        let b = gen::random_matrix(n, 4);
        let mut abi = vec![0.0; n * n];
        let mut bbi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                abi[morton(r as u64, c as u64) as usize] = a[r * n + c];
                bbi[morton(r as u64, c as u64) as usize] = b[r * n + c];
            }
        }
        let cbi = par_strassen_bi(&abi, &bbi, n);
        let want = oracle::matmul_rm(&a, &b, n);
        for r in 0..n {
            for c in 0..n {
                let g = cbi[morton(r as u64, c as u64) as usize];
                assert!((g - want[r * n + c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn par_fft_matches_dft() {
        for n in [4usize, 8, 64, 128] {
            let x: Vec<Cx> = (0..n)
                .map(|i| Cx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut y = x.clone();
            par_fft(&mut y);
            let want = oracle::dft(&x);
            for i in 0..n {
                assert!(
                    (y[i].re - want[i].re).abs() < 1e-6 * n as f64
                        && (y[i].im - want[i].im).abs() < 1e-6 * n as f64,
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn par_fft_matches_dft_above_cutoff() {
        let n = 4096; // exercises the for_each_chunk_par row path
        let x: Vec<Cx> = (0..n)
            .map(|i| Cx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut y = x.clone();
        par_fft(&mut y);
        let want = oracle::dft(&x);
        for i in 0..n {
            assert!(
                (y[i].re - want[i].re).abs() < 1e-5 * n as f64
                    && (y[i].im - want[i].im).abs() < 1e-5 * n as f64,
                "i={i}"
            );
        }
    }

    #[test]
    fn par_sort_matches() {
        let keys = gen::random_u64s(5000, 10_000, 9);
        let mut data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 2)).collect();
        let want = oracle::sort_pairs(&data);
        par_mergesort(&mut data);
        assert_eq!(
            data.iter().map(|p| p.0).collect::<Vec<_>>(),
            want.iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_list_rank_matches() {
        let succ = gen::random_list(1000, 8);
        assert_eq!(par_list_rank(&succ), oracle::list_rank(&succ));
    }

    #[test]
    fn par_spms_sorts_stably_above_and_below_cutoff() {
        for n in [0usize, 1, 5, 100, 1025, 5000, 20_000] {
            let keys = gen::random_u64s(n, (n as u64 / 4).max(3), n as u64 + 1);
            let mut data: Vec<(u64, u64)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u64))
                .collect();
            let want = oracle::sort_pairs(&data);
            par_spms(&mut data);
            assert_eq!(data, want, "n={n} (payload equality = stability)");
        }
    }

    #[test]
    fn par_spms_duplicate_heavy_and_adversarial() {
        for n in [2048usize, 4099] {
            let all_equal: Vec<(u64, u64)> = (0..n as u64).map(|i| (7, i)).collect();
            let two_keys: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 2, i)).collect();
            let skew: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (if i == 0 { 0 } else { 9 }, i))
                .collect();
            let desc: Vec<(u64, u64)> = (0..n as u64).map(|i| (n as u64 - i, i)).collect();
            for base in [all_equal, two_keys, skew, desc] {
                let mut data = base.clone();
                let want = oracle::sort_pairs(&base);
                par_spms(&mut data);
                assert_eq!(data, want);
            }
        }
    }

    /// xorshift64* stream for the merge-equivalence fuzz below.
    fn xs(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The obviously-correct reference [`merge2`] is pinned against.
    fn naive_merge(l: &[(u64, u64)], r: &[(u64, u64)], out: &mut [(u64, u64)]) {
        let (mut i, mut j) = (0, 0);
        for slot in out.iter_mut() {
            *slot = if i < l.len() && (j >= r.len() || l[i].0 <= r[j].0) {
                i += 1;
                l[i - 1]
            } else {
                j += 1;
                r[j - 1]
            };
        }
    }

    #[test]
    fn merge2_matches_naive_merge_across_shapes_and_tie_storms() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for case in 0..200 {
            let ll = (xs(&mut state) % 200) as usize;
            let rl = (xs(&mut state) % 200) as usize;
            // Narrow key ranges force ties; wide ones force streaks the
            // galloping path must get right.
            let range = [1u64, 3, 8, 1 << 60][case % 4];
            let mk = |len: usize, state: &mut u64, tag: u64| {
                let mut v: Vec<(u64, u64)> = (0..len as u64)
                    .map(|i| (xs(state) % range, (tag << 32) | i))
                    .collect();
                v.sort_by_key(|p| p.0); // stable: payloads stay ordered
                v
            };
            let l = mk(ll, &mut state, 0);
            let r = mk(rl, &mut state, 1);
            let mut want = vec![(0, 0); ll + rl];
            let mut got = vec![(0, 0); ll + rl];
            naive_merge(&l, &r, &mut want);
            merge2(&l, &r, &mut got);
            assert_eq!(got, want, "case {case} (payload equality = stability)");
        }
    }

    #[test]
    fn merge2_gallops_through_disjoint_and_presorted_sides() {
        // Fully disjoint sides: both directions, both orders — the
        // gallop bulk-copy must fire and stay exact.
        let low: Vec<(u64, u64)> = (0..500u64).map(|i| (i, i)).collect();
        let high: Vec<(u64, u64)> = (0..500u64).map(|i| (1000 + i, i)).collect();
        for (l, r) in [(&low, &high), (&high, &low)] {
            let mut want = vec![(0, 0); 1000];
            let mut got = vec![(0, 0); 1000];
            naive_merge(l, r, &mut want);
            merge2(l, r, &mut got);
            assert_eq!(got, want);
        }
        // One long tie plateau against a point: ties must all stay left.
        let ties: Vec<(u64, u64)> = (0..100u64).map(|i| (5, i)).collect();
        let point = vec![(5u64, 999u64)];
        let mut got = vec![(0, 0); 101];
        merge2(&ties, &point, &mut got);
        assert_eq!(got[100], (5, 999), "left side wins every tie");
    }

    #[test]
    fn seq_sort_matches_std_stable_sort() {
        let mut state = 7u64;
        for n in [0usize, 1, 2, 31, 32, 33, 100, 1024, 1025, 4000] {
            let mut data: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (xs(&mut state) % (n as u64 / 2 + 3), i))
                .collect();
            let mut want = data.clone();
            want.sort_by_key(|p| p.0);
            let mut scratch = vec![(0, 0); n];
            seq_sort(&mut data, &mut scratch);
            assert_eq!(data, want, "n={n} (payload equality = stability)");
        }
    }

    #[test]
    fn arena_len_covers_the_recursion() {
        // The invariant spms_rec relies on: the arena funds both the
        // concurrent chunk sorts and the two gapped merge halves.
        for n in [1usize, 100, 1 << 11, 1 << 14, 100_000, 1 << 20] {
            let len = arena_len(n);
            if n <= SEQ_CUTOFF {
                assert_eq!(len, n);
                continue;
            }
            let chunks = (n as f64).sqrt().ceil() as usize;
            let q = n.div_ceil(chunks);
            let nchunks = n.div_ceil(q);
            assert!(len >= 2 * line_up(n), "two halves of every element");
            assert!(len >= nchunks * arena_len(q), "chunk sorts fit");
        }
    }

    #[test]
    fn par_spms_matches_inside_native_pool() {
        let keys = gen::random_u64s(30_000, 500, 13);
        let mut data: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        let want = oracle::sort_pairs(&data);
        let cfg = hbp_sched::native::NativeConfig {
            workers: 3,
            seed: 21,
            ..Default::default()
        };
        let (_, report) = hbp_sched::native::NativePool::run(cfg, || par_spms(&mut data));
        assert_eq!(data, want);
        assert!(report.work > 1, "SPMS forked tasks on the pool");
    }
}
