//! FFT (paper §3.2): the six-step variant of [4, 21] with optimal
//! sequential cache complexity `O((n/B)·log_M n)` [17] and low depth.
//!
//! Type 2 HBP with `c = 2` collections of `Θ(√n)` recursive subproblems of
//! size `Θ(√n)`, interleaved with transposes and a twiddle scan. Transposes
//! are out-of-place into a `Θ(n)` **stack temporary** declared by the
//! calling task (Def 3.6), which keeps every recursive subproblem
//! contiguous and every word written O(1) times per level; the strided
//! transpose reads give the overall `f(r) = √r` of Table 1.
//!
//! Derivation (j = j₁k₂ + j₂, f = f₁ + f₂k₁, ω = e^(−2πi/n), n = k₁k₂):
//!
//! ```text
//! X[f₁+f₂k₁] = Σ_{j₂} ω^{j₂f₁} ω_{k₂}^{j₂f₂} · ( Σ_{j₁} x[j₁k₂+j₂] ω_{k₁}^{j₁f₁} )
//! ```
//!
//! 1. transpose `a (k₁×k₂)` → `t (k₂×k₁)`: columns become contiguous rows;
//! 2. k₁-point FFT on each of the k₂ rows of `t` (collection 1);
//! 3. twiddle: `t[j₂k₁+f₁] *= ω^{j₂f₁}`;
//! 4. transpose `t` → `a`;
//! 5. k₂-point FFT on each of the k₁ rows of `a` (collection 2);
//! 6. transpose `a` → `t`, then copy `t` → `a`: natural-order output.

use hbp_model::{BuildConfig, Builder, Computation, Cx, GArray};

use crate::util::View;

/// Out-of-place rectangular transpose: `dst[c·rows + r] = src[r·cols + c]`
/// for an `rows×cols` row-major `src`. Cache-oblivious binary splitting on
/// the longer side; writes are contiguous in `dst` task order (`L = O(1)`).
fn rect_transpose(
    b: &mut Builder,
    src: View<Cx>,
    dst: View<Cx>,
    r0: usize,
    c0: usize,
    nr: usize,
    nc: usize,
    rows: usize,
    cols: usize,
) {
    if nr == 1 && nc == 1 {
        let v = src.read(b, r0 * cols + c0);
        dst.write(b, c0 * rows + r0, v);
        return;
    }
    let sz = (nr * nc) as u64;
    if nc >= nr {
        let h = nc / 2;
        b.fork(
            sz / 2,
            sz - sz / 2,
            |b| rect_transpose(b, src, dst, r0, c0, nr, h, rows, cols),
            |b| rect_transpose(b, src, dst, r0, c0 + h, nr, nc - h, rows, cols),
        );
    } else {
        let h = nr / 2;
        b.fork(
            sz / 2,
            sz - sz / 2,
            |b| rect_transpose(b, src, dst, r0, c0, h, nc, rows, cols),
            |b| rect_transpose(b, src, dst, r0 + h, c0, nr - h, nc, rows, cols),
        );
    }
}

/// Straight copy BP: `dst[i] = src[i]`.
fn bp_copy(b: &mut Builder, src: View<Cx>, dst: View<Cx>, lo: usize, hi: usize) {
    if hi - lo == 1 {
        let v = src.read(b, lo);
        dst.write(b, lo, v);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| bp_copy(b, src, dst, lo, mid),
        |b| bp_copy(b, src, dst, mid, hi),
    );
}

/// Twiddle BP: `t[j₂·k₁ + f₁] *= ω_n^{j₂·f₁}`.
fn twiddle(b: &mut Builder, t: View<Cx>, lo: usize, hi: usize, k1: usize, n: usize) {
    if hi - lo == 1 {
        let (j2, f1) = (lo / k1, lo % k1);
        let theta = -2.0 * std::f64::consts::PI * (j2 as f64) * (f1 as f64) / n as f64;
        let v = t.read(b, lo);
        t.write(b, lo, v * Cx::cis(theta));
        return;
    }
    let mid = lo + (hi - lo) / 2;
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| twiddle(b, t, lo, mid, k1, n),
        |b| twiddle(b, t, mid, hi, k1, n),
    );
}

/// The six-step body: in-place FFT of the contiguous length-`n` view
/// (`n` any power of two).
fn fft_rec(b: &mut Builder, a: View<Cx>, n: usize) {
    if n == 1 {
        return;
    }
    if n == 2 {
        let x0 = a.read(b, 0);
        let x1 = a.read(b, 1);
        a.write(b, 0, x0 + x1);
        a.write(b, 1, x0 - x1);
        return;
    }
    let m = n.trailing_zeros();
    let k1 = 1usize << m.div_ceil(2);
    let k2 = n / k1;
    // Θ(n) stack temporary for the out-of-place transposes (Def 3.6).
    let tmp = b.local_array::<Cx>(n);
    let t = View::l(tmp);
    // 1. a (k1×k2) → t (k2×k1)
    rect_transpose(b, a, t, 0, 0, k1, k2, k1, k2);
    // 2. collection 1: k2 FFTs of size k1 on contiguous rows of t
    hbp_model::builder::fanout_uniform(b, k2, k1 as u64, &mut |b, row| {
        fft_rec(b, t.shift(row * k1), k1);
    });
    // 3. twiddle
    twiddle(b, t, 0, n, k1, n);
    // 4. t (k2×k1) → a (k1×k2)
    rect_transpose(b, t, a, 0, 0, k2, k1, k2, k1);
    // 5. collection 2: k1 FFTs of size k2 on contiguous rows of a
    hbp_model::builder::fanout_uniform(b, k1, k2 as u64, &mut |b, row| {
        fft_rec(b, a.shift(row * k2), k2);
    });
    // 6. a (k1×k2) → t (k2×k1), then copy back: a[f₁+f₂k₁] = X[f₁+f₂k₁]
    rect_transpose(b, a, t, 0, 0, k1, k2, k1, k2);
    bp_copy(b, t, a, 0, n);
}

/// FFT of `x` (any power-of-two length), in natural order.
pub fn fft(x: &[Cx], cfg: BuildConfig) -> (Computation, GArray<Cx>) {
    let n = x.len();
    assert!(n.is_power_of_two(), "n must be a power of two, got {n}");
    let mut out_h = None;
    let comp = Builder::build(cfg, n as u64, |b| {
        let a = b.input(x);
        out_h = Some(a);
        fft_rec(b, View::g(a), n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    fn close(a: Cx, b: Cx, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    fn signal(n: usize) -> Vec<Cx> {
        (0..n)
            .map(|i| Cx::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 256] {
            let x = signal(n);
            let (comp, out) = fft(&x, BuildConfig::default());
            let got = read_out(&comp, out);
            let want = oracle::dft(&x);
            for i in 0..n {
                assert!(
                    close(got[i], want[i], 1e-6 * n as f64),
                    "n={n} i={i}: {:?} vs {:?}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn work_is_n_log_n_ish() {
        let (c64, _) = fft(&signal(64), BuildConfig::default());
        let (c256, _) = fft(&signal(256), BuildConfig::default());
        // W(n) = O(n log n): W(256)/W(64) ≈ 4·(8/6) ≈ 5.3
        let ratio = c256.work() as f64 / c64.work() as f64;
        assert!((3.5..7.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn span_is_polylog() {
        let (c, _) = fft(&signal(256), BuildConfig::default());
        let s = analysis::span(&c);
        assert!(s < 2500, "T∞ = O(log n · log log n), got {s}");
    }

    #[test]
    fn writes_are_bounded_per_level() {
        // Each six-step level writes each word O(1) times; levels are
        // O(log log n), so per-word writes stay small and flat.
        let (c256, _) = fft(&signal(256), BuildConfig::default());
        let (g256, _) = analysis::write_counts(&c256);
        assert!(g256 <= 12, "writes per word O(log log n): {g256}");
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let x = signal(n);
        let (comp, out) = fft(&x, BuildConfig::default());
        let got = read_out(&comp, out);
        let e_time: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let e_freq: f64 = got.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-6 * n as f64);
    }
}
