//! Sequential reference implementations used as correctness oracles for
//! every trace-built algorithm.

use hbp_model::Cx;

/// Sum of a slice.
pub fn sum(a: &[u64]) -> u64 {
    a.iter().copied().fold(0u64, u64::wrapping_add)
}

/// Inclusive prefix sums.
pub fn prefix_sums(a: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut acc = 0u64;
    for &x in a {
        acc = acc.wrapping_add(x);
        out.push(acc);
    }
    out
}

/// Elementwise sum of two slices.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Transpose of an `n×n` row-major matrix.
pub fn transpose_rm(a: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            out[c * n + r] = a[r * n + c];
        }
    }
    out
}

/// Naive `n×n` row-major matrix product.
pub fn matmul_rm(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                out[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    out
}

/// Naive DFT: `X[k] = Σ_j x[j]·e^{-2πi·jk/n}`.
pub fn dft(x: &[Cx]) -> Vec<Cx> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Cx::default();
            for (j, &v) in x.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (j as f64) * (k as f64) / n as f64;
                acc = acc + v * Cx::cis(theta);
            }
            acc
        })
        .collect()
}

/// Sorted copy of a slice of `(key, payload)` pairs, stable on key.
pub fn sort_pairs(a: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut v = a.to_vec();
    v.sort_by_key(|&(k, _)| k);
    v
}

/// Sequential list ranking: `rank[i]` = number of hops from `i` to the tail
/// (the element whose successor is itself), counting weights.
///
/// `succ[i]` is the successor index; the tail points to itself.
pub fn list_rank(succ: &[usize]) -> Vec<u64> {
    let n = succ.len();
    let mut rank = vec![0u64; n];
    // Find tail and build predecessor chain.
    let mut pred = vec![usize::MAX; n];
    let mut tail = usize::MAX;
    for i in 0..n {
        if succ[i] == i {
            tail = i;
        } else {
            pred[succ[i]] = i;
        }
    }
    assert!(tail != usize::MAX, "list has no tail");
    let mut cur = tail;
    let mut d = 0u64;
    loop {
        rank[cur] = d;
        d += 1;
        if pred[cur] == usize::MAX {
            break;
        }
        cur = pred[cur];
    }
    rank
}

/// Connected-component labels via union–find: `label[v]` = smallest vertex
/// index in `v`'s component.
pub fn components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while p[r] != r {
            r = p[r];
        }
        let mut c = x;
        while p[c] != r {
            let nx = p[c];
            p[c] = r;
            c = nx;
        }
        r
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv)] = ru.min(rv);
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_sum() {
        let a = [3, 1, 4, 1, 5];
        let ps = prefix_sums(&a);
        assert_eq!(ps, vec![3, 4, 8, 9, 14]);
        assert_eq!(*ps.last().unwrap(), sum(&a));
    }

    #[test]
    fn transpose_involutes() {
        let n = 4;
        let a: Vec<f64> = (0..16).map(|x| x as f64).collect();
        assert_eq!(transpose_rm(&transpose_rm(&a, n), n), a);
    }

    #[test]
    fn matmul_identity() {
        let n = 3;
        let mut id = vec![0.0; 9];
        for i in 0..3 {
            id[i * 3 + i] = 1.0;
        }
        let a: Vec<f64> = (0..9).map(|x| x as f64 + 1.0).collect();
        assert_eq!(matmul_rm(&a, &id, n), a);
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Cx::default(); 8];
        x[0] = Cx::new(1.0, 0.0);
        for v in dft(&x) {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn list_rank_chain() {
        // 3 -> 1 -> 0 -> 2(tail)
        let succ = vec![2, 0, 2, 1];
        assert_eq!(list_rank(&succ), vec![1, 2, 0, 3]);
    }

    #[test]
    fn components_basic() {
        let labels = components(5, &[(0, 1), (3, 4)]);
        assert_eq!(labels, vec![0, 0, 2, 3, 3]);
    }
}
