//! # hbp-algos — the paper's HBP algorithm suite
//!
//! Implements every algorithm of Table 1 of Cole & Ramachandran (IPDPS 2012 /
//! arXiv:1103.4071) as an HBP computation recorded through
//! [`hbp_model::Builder`], plus sequential oracles and real-parallel (rayon)
//! counterparts for wall-clock benchmarking:
//!
//! | module      | algorithms                                                   |
//! |-------------|--------------------------------------------------------------|
//! | [`scan`]    | M-Sum, Matrix Addition (MA), Prefix Sums (PS)                |
//! | [`layout`]  | RM→BI, Direct BI→RM, BI-RM (gap RM), BI-RM for FFT           |
//! | [`mt`]      | Matrix Transposition in bit-interleaved layout               |
//! | [`strassen`]| Strassen's matrix multiplication (BI layout)                 |
//! | [`mm`]      | Depth-n-MM: 8-way recursive MM with local copies ([13])      |
//! | [`fft`]     | Six-step FFT                                                 |
//! | [`sort`]    | HBP mergesort (`O(n log² n)` stand-in, kept for A/B)         |
//! | [`spms`]    | SPMS [12]: Sample, Partition and Merge Sort (the real thing) |
//! | [`listrank`]| List Ranking with IS contraction and gapping                 |
//! | [`cc`]      | Connected components via hooking + pointer doubling         |
//! | [`par`]     | rayon implementations for real-machine wall-clock benches    |
//! | [`gen`]     | workload generators                                          |
//! | [`oracle`]  | sequential reference implementations                         |
//!
//! Every trace-built algorithm is verified against its oracle in unit tests,
//! so each simulated run doubles as a correctness check.

pub mod cc;
pub mod compose;
pub mod euler;
pub mod fft;
pub mod gen;
pub mod layout;
pub mod listrank;
pub mod mm;
pub mod mt;
pub mod oracle;
pub mod par;
pub mod scan;
pub mod sort;
pub mod spms;
pub mod strassen;
pub mod util;
