//! Matrix Transposition (MT) in the bit-interleaved layout (paper §3.2):
//! a single BP computation with `f(r) = O(1)` and `L(r) = O(1)`, obtained by
//! exposing the parallelism of the recursive transpose of [17].
//!
//! In-place on the BI array: `T([Q0 Q1; Q2 Q3]) = [T(Q0) T(Q2); T(Q1) T(Q3)]`
//! — recurse into the diagonal quadrants and swap-transpose the
//! anti-diagonal pair. Every quadrant is contiguous in BI, so tasks touch
//! `O(r/B + 1)` blocks and sibling tasks partition the data.

use hbp_model::{BuildConfig, Builder, Computation, GArray};

/// Transpose the `k×k` BI submatrix at element offset `base` in place.
pub(crate) fn diag(b: &mut Builder, a: GArray<f64>, base: usize, k: usize) {
    if k == 1 {
        return;
    }
    let h = k / 2;
    let q = h * h;
    b.fork(
        (2 * q) as u64,
        (2 * q) as u64,
        |b| {
            b.fork(
                q as u64,
                q as u64,
                |b| diag(b, a, base, h),
                |b| diag(b, a, base + 3 * q, h),
            );
        },
        |b| swap_t(b, a, base + q, base + 2 * q, h),
    );
}

/// `A ← Bᵀ`, `B ← Aᵀ` for the two `k×k` BI submatrices at `b1`, `b2`.
fn swap_t(b: &mut Builder, a: GArray<f64>, b1: usize, b2: usize, k: usize) {
    if k == 1 {
        let x = b.read(a, b1);
        let y = b.read(a, b2);
        b.write(a, b1, y);
        b.write(a, b2, x);
        return;
    }
    let h = k / 2;
    let q = h * h;
    // pairs: (A.Q0,B.Q0), (A.Q1,B.Q2), (A.Q2,B.Q1), (A.Q3,B.Q3)
    b.fork(
        (4 * q) as u64,
        (4 * q) as u64,
        |b| {
            b.fork(
                (2 * q) as u64,
                (2 * q) as u64,
                |b| swap_t(b, a, b1, b2, h),
                |b| swap_t(b, a, b1 + q, b2 + 2 * q, h),
            );
        },
        |b| {
            b.fork(
                (2 * q) as u64,
                (2 * q) as u64,
                |b| swap_t(b, a, b1 + 2 * q, b2 + q, h),
                |b| swap_t(b, a, b1 + 3 * q, b2 + 3 * q, h),
            );
        },
    );
}

/// MT: transpose an `n×n` matrix given in BI layout, in place.
/// Returns the computation and the (transposed) array handle.
pub fn transpose_bi(bi: &[f64], n: usize, cfg: BuildConfig) -> (Computation, GArray<f64>) {
    assert!(n.is_power_of_two() && bi.len() == n * n);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let a = b.input(bi);
        out_h = Some(a);
        diag(b, a, 0, n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{morton, morton_decode};
    use crate::util::read_out;
    use hbp_model::analysis;

    fn bi_matrix(n: usize) -> Vec<f64> {
        let mut bi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                bi[morton(r as u64, c as u64) as usize] = (r * n + c) as f64;
            }
        }
        bi
    }

    #[test]
    fn transposes_correctly() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let bi = bi_matrix(n);
            let (comp, out) = transpose_bi(&bi, n, BuildConfig::default());
            let res = read_out(&comp, out);
            for m in 0..n * n {
                let (r, c) = morton_decode(m as u64);
                assert_eq!(res[m], bi[morton(c, r) as usize], "n={n} at ({r},{c})");
            }
        }
    }

    #[test]
    fn work_is_linear_in_matrix_size() {
        let (c16, _) = transpose_bi(&bi_matrix(16), 16, BuildConfig::default());
        let (c32, _) = transpose_bi(&bi_matrix(32), 32, BuildConfig::default());
        // doubling n quadruples elements; work must scale by ~4
        let ratio = c32.work() as f64 / c16.work() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn span_is_logarithmic() {
        let (c, _) = transpose_bi(&bi_matrix(32), 32, BuildConfig::default());
        let s = analysis::span(&c);
        assert!(s <= 30 * 10 + 60, "T∞ = O(log n), got {s}");
    }

    #[test]
    fn f_and_l_are_constant() {
        let (c, _) = transpose_bi(&bi_matrix(16), 16, BuildConfig::default());
        for row in analysis::f_estimate(&c, 32) {
            assert!(row.blocks <= row.accesses / 32 + 4, "f=O(1): {row:?}");
        }
        for row in analysis::l_estimate(&c, 32) {
            assert!(row.shared_blocks <= 2, "L=O(1): {row:?}");
        }
    }

    #[test]
    fn limited_access_writes() {
        let (c, _) = transpose_bi(&bi_matrix(16), 16, BuildConfig::default());
        let (g, _) = analysis::write_counts(&c);
        assert!(g <= 1, "each element written once, got {g}");
    }

    #[test]
    fn involution() {
        let n = 8;
        let bi = bi_matrix(n);
        let (c1, o1) = transpose_bi(&bi, n, BuildConfig::default());
        let once = read_out(&c1, o1);
        let once_f: Vec<f64> = once;
        let (c2, o2) = transpose_bi(&once_f, n, BuildConfig::default());
        assert_eq!(read_out(&c2, o2), bi);
    }
}
