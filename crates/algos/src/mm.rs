//! Depth-n-MM (paper §3.2, Table 1): the `O(n³)`-work, depth-`O(n)`
//! recursive matrix multiplication of [17], converted to **limited access**
//! with local copies as in the companion paper [13].
//!
//! Type 2 HBP with `c = 2` collections of `v = 4` parallel recursive
//! subproblems of size `s(m) = m/4` each: round 1 computes
//! `C ← A·B` products directly into the output quadrants; round 2 computes
//! the complementary products into **stack temporaries** and adds them with
//! a BP, so every output word is written at most twice (Def 2.4) and every
//! task's frame is `Θ(|τ|)` (Def 3.6). This is the `c = 2, s(n) = n/4`
//! case of Lemmas 4.1(iii) / 4.2(iii).

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::scan::bp_add_views;
use crate::util::View;

/// `C = A · B` over `k×k` BI views.
fn mm_rec(b: &mut Builder, a: View<f64>, bm: View<f64>, c: View<f64>, k: usize) {
    if k == 1 {
        let x = a.read(b, 0);
        let y = bm.read(b, 0);
        c.write(b, 0, x * y);
        return;
    }
    let h = k / 2;
    let q = h * h;
    let (a11, a12, a21, a22) = (a, a.shift(q), a.shift(2 * q), a.shift(3 * q));
    let (b11, b12, b21, b22) = (bm, bm.shift(q), bm.shift(2 * q), bm.shift(3 * q));
    let (c11, c12, c21, c22) = (c, c.shift(q), c.shift(2 * q), c.shift(3 * q));

    // Θ(m) stack temporaries for both rounds' products ([13]'s local
    // copies), so every word of C is written exactly once by the combine.
    let ta = b.local_array::<f64>(4 * q);
    let tb = b.local_array::<f64>(4 * q);
    let t1 = |i: usize| View::l(ta).shift(i * q);
    let t2 = |i: usize| View::l(tb).shift(i * q);

    // Round 1 (collection 1): first four products into temporaries.
    let r1: Vec<(View<f64>, View<f64>, View<f64>)> = vec![
        (a11, b11, t1(0)),
        (a11, b12, t1(1)),
        (a21, b11, t1(2)),
        (a21, b12, t1(3)),
    ];
    hbp_model::builder::fanout_uniform(b, 4, q as u64, &mut |b, i| {
        let (x, y, d) = r1[i];
        mm_rec(b, x, y, d, h);
    });

    // Round 2 (collection 2): complementary products.
    let r2: Vec<(View<f64>, View<f64>, View<f64>)> = vec![
        (a12, b21, t2(0)),
        (a12, b22, t2(1)),
        (a22, b21, t2(2)),
        (a22, b22, t2(3)),
    ];
    hbp_model::builder::fanout_uniform(b, 4, q as u64, &mut |b, i| {
        let (x, y, d) = r2[i];
        mm_rec(b, x, y, d, h);
    });

    // Combine: C_q = TA_q + TB_q, one write per output word.
    let outs = [c11, c12, c21, c22];
    hbp_model::builder::fanout_uniform(b, 4, q as u64, &mut |b, i| {
        bp_add_views(b, t1(i), t2(i), outs[i], 0, q, 1.0);
    });
}

/// Depth-n-MM: multiply two `n×n` matrices in BI layout.
pub fn depth_n_mm(
    a_bi: &[f64],
    b_bi: &[f64],
    n: usize,
    cfg: BuildConfig,
) -> (Computation, GArray<f64>) {
    assert!(n.is_power_of_two() && a_bi.len() == n * n && b_bi.len() == n * n);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |bd| {
        let av = bd.input(a_bi);
        let bv = bd.input(b_bi);
        let cv = bd.alloc::<f64>(n * n);
        out_h = Some(cv);
        mm_rec(bd, View::g(av), View::g(bv), View::g(cv), n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::morton;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    fn to_bi(rm: &[f64], n: usize) -> Vec<f64> {
        let mut bi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                bi[morton(r as u64, c as u64) as usize] = rm[r * n + c];
            }
        }
        bi
    }

    #[test]
    fn matches_naive_matmul() {
        for n in [1usize, 2, 4, 8, 16] {
            let a: Vec<f64> = (0..n * n).map(|x| ((x * 3 + 1) % 7) as f64).collect();
            let b: Vec<f64> = (0..n * n).map(|x| ((x * 5 + 2) % 9) as f64).collect();
            let (comp, out) = depth_n_mm(&to_bi(&a, n), &to_bi(&b, n), n, BuildConfig::default());
            let got_bi = read_out(&comp, out);
            let want = oracle::matmul_rm(&a, &b, n);
            for r in 0..n {
                for c in 0..n {
                    let g = got_bi[morton(r as u64, c as u64) as usize];
                    assert!((g - want[r * n + c]).abs() < 1e-9, "n={n} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn work_is_cubic() {
        let a: Vec<f64> = vec![1.0; 64];
        let b: Vec<f64> = vec![1.0; 256];
        let (c8, _) = depth_n_mm(&a, &a, 8, BuildConfig::default());
        let (c16, _) = depth_n_mm(&b, &b, 16, BuildConfig::default());
        let ratio = c16.work() as f64 / c8.work() as f64;
        assert!((6.5..9.5).contains(&ratio), "W=O(n³): ratio {ratio}");
    }

    #[test]
    fn span_is_linear_in_n() {
        // T∞ = O(n): doubling n should roughly double the span.
        let a: Vec<f64> = vec![1.0; 64];
        let b: Vec<f64> = vec![1.0; 256];
        let (c8, _) = depth_n_mm(&a, &a, 8, BuildConfig::default());
        let (c16, _) = depth_n_mm(&b, &b, 16, BuildConfig::default());
        let r = analysis::span(&c16) as f64 / analysis::span(&c8) as f64;
        assert!((1.5..3.2).contains(&r), "span ratio {r}");
    }

    #[test]
    fn limited_access_writes_at_most_twice() {
        let a: Vec<f64> = vec![1.0; 64];
        let (c, _) = depth_n_mm(&a, &a, 8, BuildConfig::default());
        let (g, l) = analysis::write_counts(&c);
        assert!(g <= 1, "global writes ≤ 1, got {g}");
        assert!(l <= 1, "local writes ≤ 1, got {l}");
    }
}
