//! List Ranking (paper §3.2, §4.6): `rank[i]` = weighted distance from `i`
//! to the tail of a linked list.
//!
//! Structure (Type 3 HBP): while the list is longer than `n / log n`,
//! contract it by an **independent set** found with two rounds of
//! deterministic coin tossing (O(log log n) colors — our stand-in for the
//! `O(log^(k) r)`-coloring MO-IS of [11]) followed by per-color-class
//! sweeps; recurse on the contracted list; reinsert the removed elements.
//! Below the threshold, finish with **pointer jumping** using fresh
//! (double-buffered) arrays per round, which keeps the computation limited
//! access. Each contraction level computes predecessors by SPMS-sorting
//! `(successor, node)` records ([`crate::spms`]) and sweeping the sorted
//! run — the paper's sort-then-sweep routing of scatter traffic.
//!
//! **Gapping** (§3.2): when the contracted list has size `r`, it is stored
//! with stride `x = ⌊√(n/r)⌋` (i.e. size `n/x²` lives in space `n/x`, every
//! `x`-th location) — once `r ≤ n/B²` every element sits in its own block
//! and no more block misses occur. The `gapping` flag switches this off for
//! the ablation experiment (F8).
//!
//! The recursive call has `v = 1` subproblem of size ≤ 5r/6, sequenced
//! inline in the root task (a single subproblem adds no parallelism).

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::spms::spms_into;
use crate::util::{ceil_log2, View};

/// Deterministic coin tossing: a color in `0..2·64` distinct from `dct`
/// applied at the (differing) neighbor.
fn dct(a: u64, b: u64) -> u64 {
    debug_assert_ne!(a, b);
    let k = (a ^ b).trailing_zeros() as u64;
    2 * k + ((a >> k) & 1)
}

/// One level of the contraction recursion, all at build time.
struct Level {
    /// Active slot positions within the level's arrays (ascending).
    slots: Vec<usize>,
    /// Array size (slots are `0, x, 2x, …` for stride `x`).
    space: usize,
    succ: GArray<u64>,
    w: GArray<u64>,
}

/// BP over an explicit slot list (size-1 leaves).
fn for_slots(b: &mut Builder, slots: &[usize], leaf: &mut impl FnMut(&mut Builder, usize)) {
    if slots.is_empty() {
        return;
    }
    hbp_model::builder::fanout_uniform(b, slots.len(), 1, &mut |b, idx| leaf(b, slots[idx]));
}

/// Pointer-jumping base case: `⌈log₂ r⌉` rounds, fresh arrays per round.
fn jump_base(b: &mut Builder, lvl: &Level) -> GArray<u64> {
    let rounds = ceil_log2(lvl.slots.len().max(2) as u64);
    let mut cur_s = lvl.succ;
    let mut cur_d = lvl.w;
    for _ in 0..rounds {
        let ns = b.alloc::<u64>(lvl.space);
        let nd = b.alloc::<u64>(lvl.space);
        for_slots(b, &lvl.slots, &mut |b, i| {
            let s = b.read(cur_s, i) as usize;
            let d = b.read(cur_d, i);
            let ds = b.read(cur_d, s);
            let ss = b.read(cur_s, s);
            b.write(nd, i, d + ds);
            b.write(ns, i, ss);
        });
        cur_s = ns;
        cur_d = nd;
    }
    cur_d
}

/// Rank the list at `lvl`; returns the rank array (valid at active slots).
fn rank_level(b: &mut Builder, lvl: Level, n_top: usize, gapping: bool) -> GArray<u64> {
    let r = lvl.slots.len();
    let threshold = (n_top / (ceil_log2(n_top.max(2) as u64) as usize).max(1)).max(8);
    if r <= threshold {
        return jump_base(b, &lvl);
    }

    // --- predecessors via SPMS (paper §4.6 idiom: route scatter traffic
    // through a sort) -----------------------------------------------------
    // Emit (successor, node) records for the non-tail slots, SPMS-sort
    // them by successor, then sweep the sorted records positionally: the
    // writes into `pred` land in ascending address order instead of the
    // cache-hostile random scatter.
    let pred = b.alloc::<u64>(lvl.space);
    let none = lvl.space as u64;
    for &i in &lvl.slots {
        b.poke(pred, i, none); // calloc-style sentinel fill
    }
    let non_tail: Vec<usize> = lvl
        .slots
        .iter()
        .copied()
        .filter(|&i| b.peek(lvl.succ, i) as usize != i)
        .collect();
    if !non_tail.is_empty() {
        let recs = b.alloc::<(u64, u64)>(non_tail.len());
        {
            let mut slot = 0usize;
            for_slots(b, &non_tail, &mut |b, i| {
                let s = b.read(lvl.succ, i);
                b.write(recs, slot, (s, i as u64));
                slot += 1;
            });
        }
        let sorted = b.alloc::<(u64, u64)>(non_tail.len());
        spms_into(b, View::g(recs), View::g(sorted), 0, non_tail.len());
        // Successors are unique (one predecessor each), so position t of
        // the sorted records names exactly one pred cell.
        hbp_model::builder::fanout_uniform(b, non_tail.len(), 1, &mut |b, t| {
            let (s, i) = b.read(sorted, t);
            b.write(pred, s as usize, i);
        });
    }

    // --- two DCT coloring rounds ---------------------------------------
    let tail_sentinel1 = 2 * 64 + 2;
    let tail_sentinel2 = 2 * 8 + 6;
    let col1 = b.alloc::<u64>(lvl.space);
    for_slots(b, &lvl.slots, &mut |b, i| {
        let s = b.read(lvl.succ, i) as usize;
        let c = if s == i {
            tail_sentinel1
        } else {
            dct(i as u64, s as u64)
        };
        b.write(col1, i, c);
    });
    let col2 = b.alloc::<u64>(lvl.space);
    for_slots(b, &lvl.slots, &mut |b, i| {
        let s = b.read(lvl.succ, i) as usize;
        let c = b.read(col1, i);
        let c2 = if s == i {
            tail_sentinel2
        } else {
            let cs = b.read(col1, s);
            dct(c, cs)
        };
        b.write(col2, i, c2);
    });

    // --- IS selection: one sweep per color class ------------------------
    let sel = b.alloc::<u64>(lvl.space);
    let blocked = b.alloc::<u64>(lvl.space);
    let mut classes: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for &i in &lvl.slots {
        let s = b.peek(lvl.succ, i) as usize;
        let p = b.peek(pred, i);
        if s == i || p == none {
            continue; // never remove the tail or the head
        }
        classes.entry(b.peek(col2, i)).or_default().push(i);
    }
    for (_, members) in classes {
        for_slots(b, &members, &mut |b, i| {
            let bl = b.read(blocked, i);
            if bl == 0 {
                b.write(sel, i, 1);
                let s = b.read(lvl.succ, i) as usize;
                b.write(blocked, s, 1);
                let p = b.read(pred, i) as usize;
                b.write(blocked, p, 1);
            }
        });
    }

    // --- contraction into fresh (gapped) arrays -------------------------
    let survivors: Vec<usize> = lvl
        .slots
        .iter()
        .copied()
        .filter(|&i| b.peek(sel, i) == 0)
        .collect();
    let new_r = survivors.len();
    assert!(new_r < r, "independent set must be non-empty");
    let stride = if gapping {
        (((n_top as f64) / new_r as f64).sqrt() as usize).max(1)
    } else {
        1
    };
    let new_space = new_r * stride;
    // survivor numbering (the paper computes this with a prefix-sums BP)
    let map = b.alloc::<u64>(lvl.space);
    let new_slots: Vec<usize> = (0..new_r).map(|j| j * stride).collect();
    {
        let mut j = 0usize;
        let surv = survivors.clone();
        for_slots(b, &surv, &mut |b, i| {
            b.write(map, i, (j * stride) as u64);
            j += 1;
        });
    }
    let nsucc = b.alloc::<u64>(new_space.max(1));
    let nw = b.alloc::<u64>(new_space.max(1));
    for_slots(b, &survivors, &mut |b, i| {
        let mi = b.read(map, i) as usize;
        let s = b.read(lvl.succ, i) as usize;
        if s == i {
            b.write(nsucc, mi, mi as u64);
            let wi = b.read(lvl.w, i);
            b.write(nw, mi, wi);
        } else if b.read(sel, s) == 1 {
            // absorb the removed successor
            let s2 = b.read(lvl.succ, s) as usize;
            let wi = b.read(lvl.w, i);
            let ws = b.read(lvl.w, s);
            let m2 = b.read(map, s2);
            b.write(nsucc, mi, m2);
            b.write(nw, mi, wi + ws);
        } else {
            let m2 = b.read(map, s);
            let wi = b.read(lvl.w, i);
            b.write(nsucc, mi, m2);
            b.write(nw, mi, wi);
        }
    });

    // --- recurse (v = 1 subproblem of size ≤ 5r/6) -----------------------
    let nrank = rank_level(
        b,
        Level {
            slots: new_slots,
            space: new_space.max(1),
            succ: nsucc,
            w: nw,
        },
        n_top,
        gapping,
    );

    // --- reinsertion ------------------------------------------------------
    let rank = b.alloc::<u64>(lvl.space);
    for_slots(b, &survivors, &mut |b, i| {
        let mi = b.read(map, i) as usize;
        let v = b.read(nrank, mi);
        b.write(rank, i, v);
    });
    let selected: Vec<usize> = lvl
        .slots
        .iter()
        .copied()
        .filter(|&i| b.peek(sel, i) == 1)
        .collect();
    for_slots(b, &selected, &mut |b, i| {
        let s = b.read(lvl.succ, i) as usize;
        let wi = b.read(lvl.w, i);
        let rv = b.read(rank, s);
        b.write(rank, i, wi + rv);
    });
    rank
}

/// Build a weighted ranking inside an existing computation: returns the
/// rank array, where `rank[i] = Σ w over the path from i to the tail`
/// (excluding the tail's own weight, which is forced to 0). Used by the
/// Euler-tour tree computations (§4.6) to rank a tour twice with
/// different weights in one computation.
pub fn build_rank(b: &mut Builder, succ: &[usize], w: &[u64], gapping: bool) -> GArray<u64> {
    let n = succ.len();
    assert!(n >= 1 && w.len() == n);
    let s0 = b.input(&succ.iter().map(|&x| x as u64).collect::<Vec<_>>());
    let w0_data: Vec<u64> = (0..n)
        .map(|i| if succ[i] == i { 0 } else { w[i] })
        .collect();
    let w0 = b.input(&w0_data);
    let lvl = Level {
        slots: (0..n).collect(),
        space: n,
        succ: s0,
        w: w0,
    };
    rank_level(b, lvl, n, gapping)
}

/// Weighted List Ranking: `rank[i] = Σ w` along the path from `i` to the
/// tail (tail weight forced to 0; tail points to itself).
pub fn list_rank_weighted(
    succ: &[usize],
    w: &[u64],
    cfg: BuildConfig,
    gapping: bool,
) -> (Computation, GArray<u64>) {
    let mut out_h = None;
    let comp = Builder::build(cfg, succ.len() as u64, |b| {
        out_h = Some(build_rank(b, succ, w, gapping));
    });
    (comp, out_h.unwrap())
}

/// List Ranking: given `succ` (tail points to itself), compute
/// `rank[i]` = number of hops from `i` to the tail.
pub fn list_rank(succ: &[usize], cfg: BuildConfig, gapping: bool) -> (Computation, GArray<u64>) {
    let w = vec![1u64; succ.len()];
    list_rank_weighted(succ, &w, cfg, gapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_list;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    #[test]
    fn ranks_match_oracle() {
        for n in [1usize, 2, 3, 8, 64, 300, 1024] {
            let succ = random_list(n, n as u64 + 1);
            let (comp, out) = list_rank(&succ, BuildConfig::default(), true);
            let got = read_out(&comp, out);
            let want = oracle::list_rank(&succ);
            assert_eq!(got[..n], want[..], "n={n}");
        }
    }

    #[test]
    fn gapping_does_not_change_results() {
        let succ = random_list(200, 99);
        let (c1, o1) = list_rank(&succ, BuildConfig::default(), true);
        let (c2, o2) = list_rank(&succ, BuildConfig::default(), false);
        assert_eq!(
            read_out(&c1, o1)[..200],
            read_out(&c2, o2)[..200],
            "gapped and ungapped ranks must agree"
        );
    }

    #[test]
    fn work_is_near_linear_per_level() {
        let succ = random_list(512, 5);
        let (comp, _) = list_rank(&succ, BuildConfig::default(), true);
        // W = O(n log n) for the pointer-jumping tail; the contraction
        // prefix is linear. Generous bound: 80·n·log n accesses.
        let bound = 80 * 512 * 10;
        assert!(comp.work() < bound as u64, "work {}", comp.work());
    }

    #[test]
    fn limited_access_bounded() {
        let succ = random_list(256, 11);
        let (comp, _) = list_rank(&succ, BuildConfig::default(), true);
        let (g, _) = analysis::write_counts(&comp);
        // sel/blocked cells may be written twice; everything else once
        assert!(g <= 2, "global writes ≤ 2, got {g}");
    }

    #[test]
    fn gapped_levels_use_strided_slots() {
        // With gapping, a contracted level of size r uses stride √(n/r):
        // verify that the recursion's allocations grow the heap beyond the
        // dense (ungapped) variant — the spreading is real.
        let succ = random_list(512, 21);
        let (cg, _) = list_rank(&succ, BuildConfig::default(), true);
        let (cd, _) = list_rank(&succ, BuildConfig::default(), false);
        assert!(cg.heap_words > cd.heap_words);
    }

    #[test]
    fn two_element_and_chain_lists() {
        // chain 0 -> 1 -> 2 -> ... -> n-1 (tail)
        let n = 33;
        let mut succ: Vec<usize> = (1..=n - 1).collect();
        succ.push(n - 1);
        let (comp, out) = list_rank(&succ, BuildConfig::default(), true);
        let got = read_out(&comp, out);
        for i in 0..n {
            assert_eq!(got[i], (n - 1 - i) as u64);
        }
    }
}
