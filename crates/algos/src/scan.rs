//! Scans (paper §3.2): **M-Sum**, **Matrix Addition (MA)** and **Prefix
//! Sums (PS)** — Type 1 HBP computations with `f(r) = O(1)`, `L(r) = O(1)`,
//! `W = O(n)`, `T∞ = O(log n)`, `Q = O(n/B)`.
//!
//! PS is a sequence of two BP computations: an up-sweep storing subtree sums
//! in the **in-order up-tree layout** of §3.3 (so sibling tasks share at
//! most a boundary block), and a down-sweep distributing offsets through
//! parent-frame locals.

use hbp_model::{BuildConfig, Builder, Computation, GArray, Local};

use crate::util::View;

/// Slot of the subtree over `[lo, hi)` in the in-order up-tree layout:
/// leaf `i` at `2i`, internal node with midpoint `mid` at `2·mid − 1`.
pub(crate) fn inorder_slot(lo: usize, hi: usize) -> usize {
    if hi - lo == 1 {
        2 * lo
    } else {
        2 * (lo + (hi - lo) / 2) - 1
    }
}

/// M-Sum (§2): BP tree summing `data`, result in the returned 1-element
/// array. Children deposit results in parent-frame locals (limited access).
pub fn m_sum(data: &[u64], cfg: BuildConfig) -> (Computation, GArray<u64>) {
    assert!(!data.is_empty());
    let n = data.len();
    let mut out_h = None;
    let comp = Builder::build(cfg, n as u64, |b| {
        let a = b.input(data);
        let out = b.alloc::<u64>(1);
        out_h = Some(out);
        fn rec(b: &mut Builder, a: GArray<u64>, lo: usize, hi: usize, dst: Local<u64>) {
            if hi - lo == 1 {
                let v = b.read(a, lo);
                b.wloc(dst, v);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let s1 = b.local(0u64);
            let s2 = b.local(0u64);
            b.fork(
                (mid - lo) as u64,
                (hi - mid) as u64,
                |b| rec(b, a, lo, mid, s1),
                |b| rec(b, a, mid, hi, s2),
            );
            let v1 = b.rloc(s1);
            let v2 = b.rloc(s2);
            b.wloc(dst, v1.wrapping_add(v2));
        }
        let total = b.local(0u64);
        rec(b, a, 0, n, total);
        let v = b.rloc(total);
        b.write(out, 0, v);
    });
    (comp, out_h.unwrap())
}

/// The BP body of MA over views: `c[i] = a[i] + b[i]` for `i < len`.
/// Reused by Strassen and Depth-n-MM for their combine steps.
pub(crate) fn bp_add_views(
    b: &mut Builder,
    a: View<f64>,
    bb: View<f64>,
    c: View<f64>,
    lo: usize,
    hi: usize,
    scale_b: f64,
) {
    if hi - lo == 1 {
        let x = a.read(b, lo);
        let y = bb.read(b, lo);
        c.write(b, lo, x + scale_b * y);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| bp_add_views(b, a, bb, c, lo, mid, scale_b),
        |b| bp_add_views(b, a, bb, c, mid, hi, scale_b),
    );
}

/// Matrix Addition (MA): elementwise `c = a + b` as one BP computation.
pub fn matrix_add(a: &[f64], b: &[f64], cfg: BuildConfig) -> (Computation, GArray<f64>) {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let n = a.len();
    let mut out_h = None;
    let comp = Builder::build(cfg, n as u64, |bd| {
        let av = bd.input(a);
        let bv = bd.input(b);
        let cv = bd.alloc::<f64>(n);
        out_h = Some(cv);
        bp_add_views(bd, View::g(av), View::g(bv), View::g(cv), 0, n, 1.0);
    });
    (comp, out_h.unwrap())
}

/// Up-sweep: store every subtree's sum in the in-order layout tree `s`.
fn ps_up(b: &mut Builder, a: GArray<u64>, s: GArray<u64>, lo: usize, hi: usize) {
    if hi - lo == 1 {
        let v = b.read(a, lo);
        b.write(s, inorder_slot(lo, hi), v);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| ps_up(b, a, s, lo, mid),
        |b| ps_up(b, a, s, mid, hi),
    );
    let v1 = b.read(s, inorder_slot(lo, mid));
    let v2 = b.read(s, inorder_slot(mid, hi));
    b.write(s, inorder_slot(lo, hi), v1.wrapping_add(v2));
}

/// Down-sweep: distribute offsets; `off` lives on an ancestor's frame.
fn ps_down(
    b: &mut Builder,
    a: GArray<u64>,
    s: GArray<u64>,
    out: GArray<u64>,
    lo: usize,
    hi: usize,
    off: Local<u64>,
) {
    if hi - lo == 1 {
        let v = b.read(a, lo);
        let o = b.rloc(off);
        b.write(out, lo, o.wrapping_add(v)); // inclusive prefix sum
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let o = b.rloc(off);
    let ls = b.read(s, inorder_slot(lo, mid));
    let off_r = b.local(o.wrapping_add(ls));
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| ps_down(b, a, s, out, lo, mid, off),
        |b| ps_down(b, a, s, out, mid, hi, off_r),
    );
}

/// Prefix Sums (PS): inclusive prefix sums of `data`, as a sequence of two
/// BP computations (Type 1 HBP).
pub fn prefix_sums(data: &[u64], cfg: BuildConfig) -> (Computation, GArray<u64>) {
    assert!(!data.is_empty());
    let n = data.len();
    let mut out_h = None;
    let comp = Builder::build(cfg, n as u64, |b| {
        let a = b.input(data);
        let s = b.alloc::<u64>(2 * n - 1);
        let out = b.alloc::<u64>(n);
        out_h = Some(out);
        ps_up(b, a, s, 0, n);
        let zero = b.local(0u64);
        ps_down(b, a, s, out, 0, n, zero);
    });
    (comp, out_h.unwrap())
}

/// A generic scatter/copy BP over an index set: `f(i)` returns
/// `(src, dst, transform)` work done at leaf `i`. Used by list ranking and
/// layout compaction. The closure performs the leaf's O(1) accesses itself.
pub fn bp_foreach(
    b: &mut Builder,
    count: usize,
    per_size: u64,
    f: &mut impl FnMut(&mut Builder, usize),
) {
    hbp_model::builder::fanout_uniform(b, count, per_size, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    #[test]
    fn m_sum_matches_oracle() {
        for n in [1usize, 2, 3, 7, 64, 100] {
            let data: Vec<u64> = (0..n as u64).map(|x| x * 3 + 1).collect();
            let (comp, out) = m_sum(&data, BuildConfig::default());
            assert_eq!(read_out(&comp, out)[0], oracle::sum(&data), "n={n}");
        }
    }

    #[test]
    fn m_sum_is_limited_access() {
        let data: Vec<u64> = (0..128).collect();
        let (comp, _) = m_sum(&data, BuildConfig::default());
        let (g, l) = analysis::write_counts(&comp);
        assert!(g <= 1);
        assert!(l <= 2, "locals written at most twice, got {l}");
    }

    #[test]
    fn m_sum_work_and_span() {
        let data: Vec<u64> = vec![1; 256];
        let (comp, _) = m_sum(&data, BuildConfig::default());
        assert!(comp.work() <= 10 * 256, "W = O(n)");
        let s = analysis::span(&comp);
        assert!(s <= 40 * 8 + 64, "T∞ = O(log n), got {s}");
    }

    #[test]
    fn matrix_add_matches_oracle() {
        let n = 100;
        let a: Vec<f64> = (0..n).map(|x| x as f64).collect();
        let b: Vec<f64> = (0..n).map(|x| (x * 2) as f64).collect();
        let (comp, out) = matrix_add(&a, &b, BuildConfig::default());
        assert_eq!(read_out(&comp, out), oracle::add(&a, &b));
    }

    #[test]
    fn prefix_sums_match_oracle() {
        for n in [1usize, 2, 5, 16, 33, 128] {
            let data: Vec<u64> = (0..n as u64).map(|x| x.wrapping_mul(7) % 23).collect();
            let (comp, out) = prefix_sums(&data, BuildConfig::default());
            assert_eq!(read_out(&comp, out), oracle::prefix_sums(&data), "n={n}");
        }
    }

    #[test]
    fn prefix_sums_structure() {
        let data: Vec<u64> = vec![1; 128];
        let (comp, _) = prefix_sums(&data, BuildConfig::default());
        // Two sequenced BP phases: priority bands must be disjoint, and
        // total priorities ≈ 2 log n.
        assert!(comp.n_priorities >= 14 && comp.n_priorities <= 16);
        let (g, _l) = analysis::write_counts(&comp);
        assert_eq!(g, 1, "every global word written exactly once");
        assert!(comp.work() <= 16 * 128);
    }

    #[test]
    fn scan_f_and_l_are_constant() {
        let data: Vec<u64> = vec![1; 256];
        let (comp, _) = prefix_sums(&data, BuildConfig::default());
        for row in analysis::f_estimate(&comp, 32) {
            assert!(
                row.blocks <= row.accesses / 32 + 6,
                "f(r)=O(1) violated: {row:?}"
            );
        }
        for row in analysis::l_estimate(&comp, 32) {
            assert!(row.shared_blocks <= 3, "L(r)=O(1) violated: {row:?}");
        }
    }
}
