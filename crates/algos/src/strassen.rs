//! Strassen's matrix multiplication in the BI layout (paper §3.2):
//! a Type 2 HBP computation with `c = 1` collection of `v = 7` recursive
//! subproblems of size `s(m) = m/4`, `f(r) = O(1)`, `L(r) = O(1)`,
//! `W = O(n^λ)` (λ = log₂7), `T∞ = O(log²n)`,
//! `Q = Θ(n^λ / (B·M^{λ/2−1}))`.
//!
//! The seven products are computed into **fresh stack arrays declared by the
//! calling task** (the paper's mechanism for making the algorithm limited
//! access and exactly linear space bounded, Def 3.6); the divide/combine
//! additions are MA-style BP computations.

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::scan::bp_add_views;
use crate::util::View;

/// One linear-combination BP: `dst[i] = Σ coeff_j · src_j[i]`.
fn bp_combine(b: &mut Builder, srcs: &[(View<f64>, f64)], dst: View<f64>, lo: usize, hi: usize) {
    if hi - lo == 1 {
        let mut acc = 0.0;
        for &(v, coeff) in srcs {
            acc += coeff * v.read(b, lo);
        }
        dst.write(b, lo, acc);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    b.fork_with((mid - lo) as u64, (hi - mid) as u64, |b, right| {
        if right {
            bp_combine(b, srcs, dst, mid, hi)
        } else {
            bp_combine(b, srcs, dst, lo, mid)
        }
    });
}

/// Recursive Strassen body over BI views: `C = A · B`, all `k×k`.
pub(crate) fn strassen_rec(b: &mut Builder, a: View<f64>, bm: View<f64>, c: View<f64>, k: usize) {
    if k == 1 {
        let x = a.read(b, 0);
        let y = bm.read(b, 0);
        c.write(b, 0, x * y);
        return;
    }
    let h = k / 2;
    let q = h * h;
    // BI quadrants are contiguous: 11 = TL, 12 = TR, 21 = BL, 22 = BR.
    let (a11, a12, a21, a22) = (a, a.shift(q), a.shift(2 * q), a.shift(3 * q));
    let (b11, b12, b21, b22) = (bm, bm.shift(q), bm.shift(2 * q), bm.shift(3 * q));
    let (c11, c12, c21, c22) = (c, c.shift(q), c.shift(2 * q), c.shift(3 * q));

    // Θ(m) stack temporaries declared by this task (Def 3.6).
    let sums = b.local_array::<f64>(10 * q);
    let prods = b.local_array::<f64>(7 * q);
    let s = |i: usize| View::l(sums).shift(i * q);
    let m = |i: usize| View::l(prods).shift(i * q);

    // Ten divide-step additions (MA BPs), run as one parallel collection.
    let sum_ops: Vec<(View<f64>, View<f64>, View<f64>, f64)> = vec![
        (a11, a22, s(0), 1.0),  // S1 = A11 + A22
        (b11, b22, s(1), 1.0),  // S2 = B11 + B22
        (a21, a22, s(2), 1.0),  // S3 = A21 + A22
        (b12, b22, s(3), -1.0), // S4 = B12 − B22
        (b21, b11, s(4), -1.0), // S5 = B21 − B11
        (a11, a12, s(5), 1.0),  // S6 = A11 + A12
        (a21, a11, s(6), -1.0), // S7 = A21 − A11
        (b11, b12, s(7), 1.0),  // S8 = B11 + B12
        (a12, a22, s(8), -1.0), // S9 = A12 − A22
        (b21, b22, s(9), 1.0),  // S10 = B21 + B22
    ];
    hbp_model::builder::fanout_uniform(b, 10, q as u64, &mut |b, i| {
        let (x, y, d, coeff) = sum_ops[i];
        bp_add_views(b, x, y, d, 0, q, coeff);
    });

    // The collection of v = 7 recursive products of size m/4.
    let mul_ops: Vec<(View<f64>, View<f64>)> = vec![
        (s(0), s(1)), // M1 = S1·S2
        (s(2), b11),  // M2 = S3·B11
        (a11, s(3)),  // M3 = A11·S4
        (a22, s(4)),  // M4 = A22·S5
        (s(5), b22),  // M5 = S6·B22
        (s(6), s(7)), // M6 = S7·S8
        (s(8), s(9)), // M7 = S9·S10
    ];
    hbp_model::builder::fanout_uniform(b, 7, q as u64, &mut |b, i| {
        let (x, y) = mul_ops[i];
        strassen_rec(b, x, y, m(i), h);
    });

    // Four combine-step BPs writing the C quadrants (each word once).
    let combos: Vec<(Vec<(View<f64>, f64)>, View<f64>)> = vec![
        (
            vec![(m(0), 1.0), (m(3), 1.0), (m(4), -1.0), (m(6), 1.0)],
            c11,
        ),
        (vec![(m(2), 1.0), (m(4), 1.0)], c12),
        (vec![(m(1), 1.0), (m(3), 1.0)], c21),
        (
            vec![(m(0), 1.0), (m(1), -1.0), (m(2), 1.0), (m(5), 1.0)],
            c22,
        ),
    ];
    hbp_model::builder::fanout_uniform(b, 4, q as u64, &mut |b, i| {
        bp_combine(b, &combos[i].0, combos[i].1, 0, q);
    });
}

/// Strassen: multiply two `n×n` matrices given in BI layout.
pub fn strassen_bi(
    a_bi: &[f64],
    b_bi: &[f64],
    n: usize,
    cfg: BuildConfig,
) -> (Computation, GArray<f64>) {
    assert!(n.is_power_of_two() && a_bi.len() == n * n && b_bi.len() == n * n);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |bd| {
        let av = bd.input(a_bi);
        let bv = bd.input(b_bi);
        let cv = bd.alloc::<f64>(n * n);
        out_h = Some(cv);
        strassen_rec(bd, View::g(av), View::g(bv), View::g(cv), n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::morton;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    pub(crate) fn to_bi(rm: &[f64], n: usize) -> Vec<f64> {
        let mut bi = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                bi[morton(r as u64, c as u64) as usize] = rm[r * n + c];
            }
        }
        bi
    }

    pub(crate) fn from_bi(bi: &[f64], n: usize) -> Vec<f64> {
        let mut rm = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                rm[r * n + c] = bi[morton(r as u64, c as u64) as usize];
            }
        }
        rm
    }

    #[test]
    fn matches_naive_matmul() {
        for n in [1usize, 2, 4, 8, 16] {
            let a: Vec<f64> = (0..n * n).map(|x| ((x * 7 + 1) % 13) as f64).collect();
            let b: Vec<f64> = (0..n * n).map(|x| ((x * 5 + 2) % 11) as f64).collect();
            let (comp, out) = strassen_bi(&to_bi(&a, n), &to_bi(&b, n), n, BuildConfig::default());
            let got = from_bi(&read_out(&comp, out), n);
            let want = oracle::matmul_rm(&a, &b, n);
            for i in 0..n * n {
                assert!(
                    (got[i] - want[i]).abs() < 1e-6,
                    "n={n} i={i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn work_scales_like_n_pow_log7() {
        let a8: Vec<f64> = vec![1.0; 64];
        let a16: Vec<f64> = vec![1.0; 256];
        let (c8, _) = strassen_bi(&a8, &a8, 8, BuildConfig::default());
        let (c16, _) = strassen_bi(&a16, &a16, 16, BuildConfig::default());
        let ratio = c16.work() as f64 / c8.work() as f64;
        // doubling n multiplies work by ~7 (log2 7 ≈ 2.807)
        assert!((5.5..8.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn span_is_polylog() {
        let a: Vec<f64> = vec![1.0; 256];
        let (c, _) = strassen_bi(&a, &a, 16, BuildConfig::default());
        let s = analysis::span(&c);
        // T∞ = O(log² n): generous constant for fork bookkeeping
        assert!(s < 3000, "span {s}");
    }

    #[test]
    fn limited_access_and_linear_frames() {
        let a: Vec<f64> = vec![1.0; 64];
        let (c, _) = strassen_bi(&a, &a, 8, BuildConfig::default());
        let (g, l) = analysis::write_counts(&c);
        assert!(g <= 1, "global writes ≤ 1, got {g}");
        assert!(l <= 1, "local writes ≤ 1, got {l}");
        // exactly-linear-space-bounded: the root task's frame is Θ(m)
        let root_frame = c.nodes[c.root.idx()].frame_words as usize;
        assert!((17 * 16..=32 * 64).contains(&root_frame));
    }

    #[test]
    fn l_is_constant_on_bi() {
        let a: Vec<f64> = vec![1.0; 256];
        let (c, _) = strassen_bi(&a, &a, 16, BuildConfig::default());
        for row in analysis::l_estimate(&c, 32) {
            assert!(row.shared_blocks <= 3, "L(r)=O(1) violated: {row:?}");
        }
    }
}
