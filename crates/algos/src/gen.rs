//! Workload generators for tests, examples and benchmarks.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A random linked list over `0..n`: returns `succ` where `succ[i]` is the
/// successor and the tail points to itself. The list visits all `n` nodes.
pub fn random_list(n: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut succ = vec![0usize; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1];
    }
    let tail = *order.last().unwrap();
    succ[tail] = tail;
    succ
}

/// A random undirected graph with `n` vertices and `m` distinct edges
/// (no self-loops). Deterministic per seed.
pub fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(n >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges
}

/// A random tree on `n` vertices as a list of parent-child edges
/// (vertex 0 is the root). Deterministic per seed.
pub fn random_tree(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (1..n).map(|v| (rng.random_range(0..v), v)).collect()
}

/// Random `u64` values in `[0, bound)`.
pub fn random_u64s(n: usize, bound: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..bound)).collect()
}

/// Random `f64` matrix entries in `[-1, 1]`.
pub fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_list_is_a_single_chain() {
        for n in [1usize, 2, 17, 100] {
            let succ = random_list(n, 42);
            // exactly one tail; all nodes reachable by walking from the head
            let tails = (0..n).filter(|&i| succ[i] == i).count();
            assert_eq!(tails, 1, "n={n}");
            let ranks = crate::oracle::list_rank(&succ);
            let mut sorted = ranks.clone();
            sorted.sort();
            assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn random_graph_has_m_distinct_edges() {
        let edges = random_graph(20, 30, 7);
        assert_eq!(edges.len(), 30);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 30);
        for &(u, v) in &edges {
            assert!(u < v && v < 20);
        }
    }

    #[test]
    fn random_tree_is_connected() {
        let n = 50;
        let edges = random_tree(n, 3);
        assert_eq!(edges.len(), n - 1);
        let labels = crate::oracle::components(n, &edges);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_list(64, 5), random_list(64, 5));
        assert_eq!(random_graph(10, 12, 5), random_graph(10, 12, 5));
        assert_eq!(random_u64s(10, 100, 5), random_u64s(10, 100, 5));
    }
}
