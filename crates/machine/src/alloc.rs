//! Block-aligned bump allocation for the simulated global memory.
//!
//! The paper's system property (§2.2): "Whenever a core requests space it is
//! allocated in block sized units; naturally, the allocations to different
//! cores are disjoint and entail no block sharing." We enforce the same for
//! all global arrays: every allocation starts on a block boundary and is
//! rounded up to whole blocks, so distinct arrays never share a block.

use crate::Word;

/// A bump allocator over the simulated word-address space.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    block_words: u64,
    next: Word,
}

impl BlockAllocator {
    /// An allocator for block size `block_words`, starting at address 0.
    pub fn new(block_words: u64) -> Self {
        assert!(block_words >= 1);
        Self {
            block_words,
            next: 0,
        }
    }

    /// An allocator whose first allocation starts at `base` (rounded up to a
    /// block boundary). Used to carve disjoint regions, e.g. the stack space.
    pub fn starting_at(block_words: u64, base: Word) -> Self {
        let mut a = Self::new(block_words);
        a.next = a.round_up(base);
        a
    }

    fn round_up(&self, x: Word) -> Word {
        x.div_ceil(self.block_words) * self.block_words
    }

    /// Allocate `words` words, block-aligned, rounded up to whole blocks.
    /// Zero-word requests still consume one block (they remain disjoint).
    pub fn alloc(&mut self, words: u64) -> Word {
        let base = self.next;
        let len = self.round_up(words.max(1));
        self.next = base + len;
        base
    }

    /// First unallocated address.
    pub fn watermark(&self) -> Word {
        self.next
    }

    /// The block size this allocator aligns to.
    pub fn block_words(&self) -> u64 {
        self.block_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_block_aligned_and_disjoint() {
        let mut a = BlockAllocator::new(32);
        let x = a.alloc(10);
        let y = a.alloc(33);
        let z = a.alloc(1);
        assert_eq!(x % 32, 0);
        assert_eq!(y % 32, 0);
        assert_eq!(z % 32, 0);
        assert_eq!(x, 0);
        assert_eq!(y, 32);
        assert_eq!(z, 96); // 33 words -> 2 blocks
        assert_eq!(a.watermark(), 128);
    }

    #[test]
    fn starting_at_rounds_up() {
        let a = BlockAllocator::starting_at(32, 100);
        assert_eq!(a.watermark(), 128);
    }

    #[test]
    fn zero_sized_allocations_stay_disjoint() {
        let mut a = BlockAllocator::new(8);
        let x = a.alloc(0);
        let y = a.alloc(0);
        assert_ne!(x / 8, y / 8);
    }
}
