//! Machine parameters: `p`, `M`, `B`, and cost model.

use serde::{Deserialize, Serialize};

use crate::{BlockId, Word};

/// Optional second-level cache (paper §5.2: "Hierarchy of Caches",
/// the common `d = 2` configuration — private L1s of `M₁` words below one
/// level-2 cache of `M₂ > p·M₁` words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Config {
    /// L2 capacity `M₂`, in words.
    pub words: u64,
    /// The paper's "simple (but non-optimal)" scheme: partition the L2 into
    /// `p` disjoint equal segments, one per core, each behaving like a
    /// second private level (coherence invalidations apply per segment).
    /// `false` = one truly shared L2 (writes keep the shared copy valid, so
    /// invalidated L1 copies refill cheaply from L2).
    pub partitioned: bool,
    /// Cost of an L1 miss served by the L2 (must be < `miss_cost`); an
    /// L1+L2 miss pays the full memory cost `miss_cost`.
    pub hit_cost: u64,
}

/// Parameters of the simulated multicore (paper §1).
///
/// The algorithms and the PWS scheduler are *oblivious* to `cache_words` and
/// `block_words`; only the machine simulation itself consults them. `p` is
/// used by the scheduler solely to know the set of cores tasks may be stolen
/// from — exactly the extent of processor knowledge the paper permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores `p`. Must satisfy `1 <= p <= 64`.
    pub p: usize,
    /// Private cache size `M`, in words.
    pub cache_words: u64,
    /// Block size `B`, in words.
    pub block_words: u64,
    /// Cost `b` of a cache miss (and of a block miss), in time units.
    pub miss_cost: u64,
    /// Cost `sP` charged to a thief for a successful steal. The paper's
    /// distributed PWS implementation gives `sP = Θ(b log p)` (§4.7).
    pub steal_cost: u64,
    /// Cost charged for an unsuccessful steal attempt (a probe).
    pub probe_cost: u64,
    /// Optional level-2 cache (paper §5.2). `None` = flat memory behind
    /// the private caches.
    pub l2: Option<L2Config>,
    /// Words reserved per kernel stack region (paper §3.3): every stolen
    /// task's frames live in their own region of this many words. Frames
    /// of one kernel must fit; must be a block-aligned multiple of
    /// `block_words` so regions never share a block by construction.
    /// Defaults to [`MachineConfig::DEFAULT_REGION_WORDS`]; shrink it via
    /// [`MachineConfig::with_region_words`] for extreme-geometry tests.
    pub region_words: u64,
}

impl MachineConfig {
    /// Default words per kernel stack region (`2^26`, the value the
    /// engine hard-coded before it became configurable).
    pub const DEFAULT_REGION_WORDS: u64 = 1 << 26;

    /// A machine with `p` cores, cache size `m` words, block size `b_words`
    /// words, and the paper's default cost model: `b = 16`,
    /// `sP = b·⌈log₂ p⌉`, probe = 1.
    ///
    /// The default stack-region size adapts to the block size (rounded up
    /// to the next block multiple), so any block size the constructor
    /// accepted before regions became configurable remains accepted.
    pub fn new(p: usize, m: u64, b_words: u64) -> Self {
        assert!((1..=64).contains(&p), "p must be in 1..=64 (got {p})");
        assert!(b_words >= 1, "block size must be >= 1");
        assert!(m >= b_words, "cache must hold at least one block");
        let miss_cost = 16;
        let cfg = Self {
            p,
            cache_words: m,
            block_words: b_words,
            miss_cost,
            steal_cost: miss_cost * (usize::BITS - (p.max(2) - 1).leading_zeros()) as u64,
            probe_cost: 1,
            l2: None,
            region_words: Self::DEFAULT_REGION_WORDS.div_ceil(b_words) * b_words,
        };
        cfg.validate_regions();
        cfg
    }

    /// Replace the per-kernel stack-region size (words). An explicit size
    /// must be exact: panics unless it holds at least one block and is
    /// block-aligned.
    pub fn with_region_words(mut self, words: u64) -> Self {
        self.region_words = words;
        self.validate_regions();
        self
    }

    /// Region geometry must agree with cache geometry: a region holds at
    /// least one block, and region boundaries fall on block boundaries
    /// (otherwise two kernels' stacks could share a block structurally,
    /// which the §3.3 model rules out).
    fn validate_regions(&self) {
        assert!(
            self.region_words >= self.block_words,
            "region_words ({}) must hold at least one block ({} words)",
            self.region_words,
            self.block_words
        );
        assert_eq!(
            self.region_words % self.block_words,
            0,
            "region_words ({}) must be a multiple of block_words ({})",
            self.region_words,
            self.block_words
        );
    }

    /// Add a level-2 cache of `m2` words (paper §5.2). `partitioned`
    /// selects the per-core-segment scheme; an L2 hit costs a quarter of a
    /// memory access.
    pub fn with_l2(mut self, m2: u64, partitioned: bool) -> Self {
        assert!(
            m2 >= self.cache_words * self.p as u64,
            "M2 must exceed p*M1"
        );
        self.l2 = Some(L2Config {
            words: m2,
            partitioned,
            hit_cost: (self.miss_cost / 4).max(1),
        });
        self
    }

    /// The default machine used across the experiment suite:
    /// `p = 8`, `M = 2^14` words, `B = 32` words (a "standard tall cache",
    /// `M ≥ B²`).
    pub fn default_machine() -> Self {
        Self::new(8, 1 << 14, 32)
    }

    /// Number of block frames per private cache: `M / B`.
    pub fn frames(&self) -> usize {
        ((self.cache_words / self.block_words).max(1)) as usize
    }

    /// The block containing word address `addr`.
    #[inline]
    pub fn block_of(&self, addr: Word) -> BlockId {
        addr / self.block_words
    }

    /// Whether the cache is *tall*: `M ≥ B²` (§3.2, Lemma 4.4(iii)).
    pub fn is_tall(&self) -> bool {
        self.cache_words >= self.block_words * self.block_words
    }

    /// Replace the core count, keeping cache geometry (and recomputing `sP`).
    pub fn with_p(mut self, p: usize) -> Self {
        assert!((1..=64).contains(&p));
        self.p = p;
        self.steal_cost = self.miss_cost * (usize::BITS - (p.max(2) - 1).leading_zeros()) as u64;
        self
    }

    /// Replace the cache size `M` (words).
    pub fn with_cache_words(mut self, m: u64) -> Self {
        assert!(m >= self.block_words);
        self.cache_words = m;
        self
    }

    /// Replace the block size `B` (words), re-aligning the stack-region
    /// size up to the new block multiple (region size only relocates
    /// stacks, so rounding up is behaviour-preserving as long as frames
    /// fit).
    pub fn with_block_words(mut self, b: u64) -> Self {
        assert!(b >= 1 && self.cache_words >= b);
        self.block_words = b;
        self.region_words = self.region_words.div_ceil(b) * b;
        self.validate_regions();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_and_block_math() {
        let c = MachineConfig::new(4, 1024, 32);
        assert_eq!(c.frames(), 32);
        assert_eq!(c.block_of(0), 0);
        assert_eq!(c.block_of(31), 0);
        assert_eq!(c.block_of(32), 1);
        assert!(c.is_tall());
    }

    #[test]
    fn steal_cost_scales_with_log_p() {
        let c2 = MachineConfig::new(2, 1024, 32);
        let c16 = MachineConfig::new(16, 1024, 32);
        assert_eq!(c2.steal_cost, c2.miss_cost); // ceil(log2 2) = 1
        assert_eq!(c16.steal_cost, c16.miss_cost * 4);
    }

    #[test]
    fn not_tall_when_b_large() {
        let c = MachineConfig::new(2, 256, 32);
        assert!(!c.is_tall()); // 256 < 32^2
    }

    #[test]
    #[should_panic]
    fn rejects_too_many_cores() {
        MachineConfig::new(65, 1024, 32);
    }

    #[test]
    #[should_panic]
    fn rejects_cache_smaller_than_block() {
        MachineConfig::new(2, 16, 32);
    }

    #[test]
    fn region_words_defaults_and_shrinks() {
        let c = MachineConfig::new(4, 1024, 32);
        assert_eq!(c.region_words, MachineConfig::DEFAULT_REGION_WORDS);
        let small = c.with_region_words(1 << 12);
        assert_eq!(small.region_words, 1 << 12);
    }

    #[test]
    fn non_power_of_two_blocks_get_an_aligned_default_region() {
        // The constructor accepted any block size before regions became
        // configurable; it must keep doing so, by rounding the default
        // region up to the next block multiple.
        let c = MachineConfig::new(4, 1024, 48);
        assert_eq!(c.region_words % 48, 0);
        assert!(c.region_words >= MachineConfig::DEFAULT_REGION_WORDS);
        let rebl = MachineConfig::new(4, 1024, 32).with_block_words(48);
        assert_eq!(rebl.region_words % 48, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of block_words")]
    fn rejects_unaligned_region() {
        MachineConfig::new(2, 1024, 32).with_region_words(48);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_region_smaller_than_block() {
        MachineConfig::new(2, 1024, 32).with_region_words(16);
    }
}
