//! Accounting: hit/miss outcomes, per-core and aggregate counters.

use serde::{Deserialize, Serialize};

/// Why an access missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissKind {
    /// First access to the block by this core.
    Cold,
    /// The core held the block before but evicted it for capacity.
    Capacity,
    /// The core's copy was invalidated by another core's write — the paper's
    /// **block miss** (false sharing and its generalizations, §2.2).
    Coherence,
}

/// Outcome of a single access, with its time cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// In-cache. Cost 1.
    Hit,
    /// Missed for the given reason. Cost `1 + b`.
    Miss(MissKind),
}

impl AccessOutcome {
    /// Whether this access missed.
    pub fn is_miss(&self) -> bool {
        matches!(self, AccessOutcome::Miss(_))
    }

    /// Whether this is a coherence (block) miss.
    pub fn is_block_miss(&self) -> bool {
        matches!(self, AccessOutcome::Miss(MissKind::Coherence))
    }
}

/// Counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Accesses that hit in the private cache.
    pub hits: u64,
    /// Cold misses.
    pub cold: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Coherence misses — the paper's block misses.
    pub coherence: u64,
    /// Invalidations this core's writes sent to other caches.
    pub invalidations_sent: u64,
    /// Copies of blocks this core lost to other cores' writes.
    pub invalidations_received: u64,
    /// Capacity evictions performed by this core's cache.
    pub evictions: u64,
    /// L1 misses served by the level-2 cache (0 when no L2, paper §5.2).
    pub l2_hits: u64,
    /// L1 misses that also missed in L2 and went to memory.
    pub l2_misses: u64,
}

impl CoreStats {
    /// Total misses of any kind.
    pub fn misses(&self) -> u64 {
        self.cold + self.capacity + self.coherence
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Cache misses *excluding* coherence misses — the quantity compared
    /// against the sequential cache complexity `Q(n, M, B)` in the paper's
    /// cache-miss-excess lemmas.
    pub fn plain_misses(&self) -> u64 {
        self.cold + self.capacity
    }

    /// Accumulate another core's counters into this one.
    pub fn merge(&mut self, other: &CoreStats) {
        self.hits += other.hits;
        self.cold += other.cold;
        self.capacity += other.capacity;
        self.coherence += other.coherence;
        self.invalidations_sent += other.invalidations_sent;
        self.invalidations_received += other.invalidations_received;
        self.evictions += other.evictions;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
    }
}

/// Aggregate machine statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MachineStats {
    /// Per-core counters.
    pub per_core: Vec<CoreStats>,
    /// Total block transfers (every fetch of a block into some cache):
    /// the basis of the paper's *block delay* (Def 2.2).
    pub block_transfers: u64,
}

impl MachineStats {
    /// Sum of all cores' counters.
    pub fn total(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.per_core {
            t.merge(c);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = MachineStats {
            per_core: vec![CoreStats::default(); 2],
            block_transfers: 0,
        };
        s.per_core[0].hits = 3;
        s.per_core[0].cold = 1;
        s.per_core[1].coherence = 2;
        let t = s.total();
        assert_eq!(t.hits, 3);
        assert_eq!(t.misses(), 3);
        assert_eq!(t.plain_misses(), 1);
        assert_eq!(t.accesses(), 6);
    }

    #[test]
    fn outcome_classification() {
        assert!(AccessOutcome::Miss(MissKind::Coherence).is_block_miss());
        assert!(!AccessOutcome::Miss(MissKind::Cold).is_block_miss());
        assert!(!AccessOutcome::Hit.is_miss());
    }
}
