//! The multicore memory system: p private caches + write-invalidate
//! coherence directory + miss classification.

use std::collections::HashMap;

use crate::{
    AccessOutcome, BlockId, CoreStats, LruCache, MachineConfig, MachineStats, MissKind, Word,
};

/// Per-block coherence/bookkeeping state, packed into core bitmasks
/// (`p <= 64`).
#[derive(Debug, Clone, Copy, Default)]
struct BlockState {
    /// Cores currently holding a valid copy.
    holders: u64,
    /// Cores whose last loss of the block was a coherence invalidation
    /// (so their next miss on it is a *block miss*).
    invalidated: u64,
    /// Cores that have ever held the block (cold- vs capacity-miss split).
    ever: u64,
    /// Total times the block was fetched into some cache.
    transfers: u64,
}

/// The simulated memory system (paper §1–§2.2), optionally with a
/// second-level cache (paper §5.2).
///
/// Drive it with [`MemSystem::access`] (or [`MemSystem::access_costed`] to
/// get the time cost); read results from [`MemSystem::stats`] and
/// [`MemSystem::block_transfers`].
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MachineConfig,
    caches: Vec<LruCache>,
    /// One cache if the L2 is shared, `p` segment caches if partitioned.
    l2: Vec<LruCache>,
    blocks: HashMap<BlockId, BlockState>,
    stats: Vec<CoreStats>,
    total_transfers: u64,
}

impl MemSystem {
    /// A fresh machine with all caches empty.
    pub fn new(cfg: MachineConfig) -> Self {
        let frames = cfg.frames();
        let l2 = match cfg.l2 {
            None => Vec::new(),
            Some(l2c) if l2c.partitioned => {
                let seg = ((l2c.words / cfg.p as u64) / cfg.block_words).max(1) as usize;
                (0..cfg.p).map(|_| LruCache::new(seg)).collect()
            }
            Some(l2c) => vec![LruCache::new((l2c.words / cfg.block_words).max(1) as usize)],
        };
        Self {
            cfg,
            caches: (0..cfg.p).map(|_| LruCache::new(frames)).collect(),
            l2,
            blocks: HashMap::new(),
            stats: vec![CoreStats::default(); cfg.p],
            total_transfers: 0,
        }
    }

    /// Index of `core`'s L2 cache (its segment, or the single shared one).
    fn l2_idx(&self, core: usize) -> usize {
        match self.cfg.l2 {
            Some(l2c) if l2c.partitioned => core,
            _ => 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Perform one access by `core` to word `addr`. Returns the outcome;
    /// callers that need the time cost should use
    /// [`MemSystem::access_costed`] (the cost depends on the L2).
    pub fn access(&mut self, core: usize, addr: Word, write: bool) -> AccessOutcome {
        self.access_costed(core, addr, write).0
    }

    /// Perform one access and return `(outcome, time cost)`:
    /// hit = 1; L1 miss served by the L2 = `1 + hit_cost`; miss to
    /// memory = `1 + b`.
    pub fn access_costed(&mut self, core: usize, addr: Word, write: bool) -> (AccessOutcome, u64) {
        debug_assert!(core < self.cfg.p);
        let block = self.cfg.block_of(addr);
        let bit = 1u64 << core;
        let st = self.blocks.entry(block).or_default();

        let (outcome, cost) = if self.caches[core].touch(block) {
            self.stats[core].hits += 1;
            (AccessOutcome::Hit, 1)
        } else {
            // L1 miss: classify, then fetch through the hierarchy.
            let kind = if st.invalidated & bit != 0 {
                st.invalidated &= !bit;
                MissKind::Coherence
            } else if st.ever & bit != 0 {
                MissKind::Capacity
            } else {
                MissKind::Cold
            };
            match kind {
                MissKind::Cold => self.stats[core].cold += 1,
                MissKind::Capacity => self.stats[core].capacity += 1,
                MissKind::Coherence => self.stats[core].coherence += 1,
            }
            st.ever |= bit;
            st.holders |= bit;
            st.transfers += 1;
            self.total_transfers += 1;
            // L2 lookup (non-inclusive: an L2 eviction leaves L1s alone).
            let cost = match self.cfg.l2 {
                None => 1 + self.cfg.miss_cost,
                Some(l2c) => {
                    let idx = self.l2_idx(core);
                    if self.l2[idx].touch(block) {
                        self.stats[core].l2_hits += 1;
                        1 + l2c.hit_cost
                    } else {
                        self.stats[core].l2_misses += 1;
                        self.l2[idx].insert(block);
                        1 + self.cfg.miss_cost
                    }
                }
            };
            if let Some(evicted) = self.caches[core].insert(block) {
                self.stats[core].evictions += 1;
                // Silent capacity eviction: drop from holders; the next miss
                // on it by this core is a capacity miss (not coherence).
                let est = self
                    .blocks
                    .get_mut(&evicted)
                    .expect("evicted block has state");
                est.holders &= !bit;
                est.invalidated &= !bit;
            }
            (AccessOutcome::Miss(kind), cost)
        };

        if write {
            // Invalidate every other holder (write-invalidate coherence).
            let st = self.blocks.get_mut(&block).expect("state just created");
            let others = st.holders & !bit;
            if others != 0 {
                let partitioned = matches!(self.cfg.l2, Some(l2c) if l2c.partitioned);
                let mut mask = others;
                while mask != 0 {
                    let victim = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let removed = self.caches[victim].invalidate(block);
                    debug_assert!(removed, "holder bitmask out of sync");
                    // Partitioned L2 segments act as private second levels:
                    // the victim's segment copy dies too. A shared L2 keeps
                    // its (written-through) copy valid.
                    if partitioned {
                        self.l2[victim].invalidate(block);
                    }
                    self.stats[victim].invalidations_received += 1;
                }
                let n = others.count_ones() as u64;
                self.stats[core].invalidations_sent += n;
                st.holders = bit;
                st.invalidated |= others;
            }
        }
        (outcome, cost)
    }

    /// How many times `block` has been fetched into some cache so far
    /// (the paper's block delay over the whole execution, Def 2.2).
    pub fn block_transfers(&self, block: BlockId) -> u64 {
        self.blocks.get(&block).map_or(0, |s| s.transfers)
    }

    /// The maximum per-block transfer count over all blocks in the given
    /// address range (used to verify Lemma 3.1-style per-block bounds).
    pub fn max_transfers_in(&self, lo: Word, hi: Word) -> u64 {
        let b0 = self.cfg.block_of(lo);
        let b1 = self.cfg.block_of(hi.saturating_sub(1).max(lo));
        (b0..=b1)
            .map(|b| self.block_transfers(b))
            .max()
            .unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            per_core: self.stats.clone(),
            block_transfers: self.total_transfers,
        }
    }

    /// Reset caches and counters, keeping the configuration.
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.blocks.clear();
        self.stats = vec![CoreStats::default(); self.cfg.p];
        self.total_transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(p: usize, m: u64, b: u64) -> MemSystem {
        MemSystem::new(MachineConfig::new(p, m, b))
    }

    #[test]
    fn cold_then_hit() {
        let mut ms = machine(1, 1024, 32);
        assert_eq!(ms.access(0, 0, false), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(ms.access(0, 1, false), AccessOutcome::Hit); // same block
        assert_eq!(ms.access(0, 31, false), AccessOutcome::Hit);
        assert_eq!(ms.access(0, 32, false), AccessOutcome::Miss(MissKind::Cold));
    }

    #[test]
    fn capacity_miss_after_eviction() {
        // 2 frames: touching 3 blocks evicts the first.
        let mut ms = machine(1, 64, 32);
        ms.access(0, 0, false);
        ms.access(0, 32, false);
        ms.access(0, 64, false); // evicts block 0
        assert_eq!(
            ms.access(0, 0, false),
            AccessOutcome::Miss(MissKind::Capacity)
        );
        let t = ms.stats().total();
        assert_eq!(t.cold, 3);
        assert_eq!(t.capacity, 1);
        assert_eq!(t.coherence, 0);
        assert_eq!(t.evictions, 2);
    }

    #[test]
    fn false_sharing_ping_pong() {
        // Two cores writing into the same block alternate coherence misses —
        // the motivating Θ(B) ping-pong of §1.
        let mut ms = machine(2, 1024, 32);
        assert!(ms.access(0, 0, true).is_miss()); // cold
        assert!(ms.access(1, 1, true).is_miss()); // cold, invalidates core 0
        for i in 0..10u64 {
            let o0 = ms.access(0, 2 + (i % 8), true);
            assert_eq!(o0, AccessOutcome::Miss(MissKind::Coherence));
            let o1 = ms.access(1, 10 + (i % 8), true);
            assert_eq!(o1, AccessOutcome::Miss(MissKind::Coherence));
        }
        let t = ms.stats().total();
        assert_eq!(t.coherence, 20);
        assert_eq!(t.cold, 2);
        assert!(ms.block_transfers(0) >= 20);
    }

    #[test]
    fn read_sharing_is_free() {
        // Many cores reading one block: one cold miss each, no coherence.
        let mut ms = machine(8, 1024, 32);
        for c in 0..8 {
            assert_eq!(ms.access(c, 5, false), AccessOutcome::Miss(MissKind::Cold));
            assert_eq!(ms.access(c, 6, false), AccessOutcome::Hit);
        }
        assert_eq!(ms.stats().total().coherence, 0);
    }

    #[test]
    fn write_invalidates_readers() {
        let mut ms = machine(3, 1024, 32);
        ms.access(0, 0, false);
        ms.access(1, 0, false);
        ms.access(2, 0, true); // invalidates cores 0 and 1
        assert_eq!(ms.stats().per_core[2].invalidations_sent, 2);
        assert!(ms.access(0, 0, false).is_block_miss());
        assert!(ms.access(1, 0, false).is_block_miss());
        // core 2 still holds it? No: cores 0/1 re-reading did not invalidate.
        assert_eq!(ms.access(2, 0, false), AccessOutcome::Hit);
    }

    #[test]
    fn eviction_then_remote_write_is_capacity_not_coherence() {
        // If the core lost the block to capacity before the remote write,
        // its re-miss is a capacity miss, not a block miss.
        let mut ms = machine(2, 64, 32);
        ms.access(0, 0, false); // block 0
        ms.access(0, 32, false);
        ms.access(0, 64, false); // evicts block 0 from core 0
        ms.access(1, 0, true); // core 1 writes block 0; core 0 has no copy
        assert_eq!(
            ms.access(0, 0, false),
            AccessOutcome::Miss(MissKind::Capacity)
        );
    }

    #[test]
    fn invalidated_block_does_not_occupy_frame() {
        // After invalidation the frame is free: inserting a new block must
        // not evict anything.
        let mut ms = machine(2, 64, 32);
        ms.access(0, 0, false);
        ms.access(0, 32, false); // cache of core 0 full
        ms.access(1, 0, true); // invalidates block 0 in core 0
        ms.access(0, 64, false); // should use the freed frame
        assert_eq!(ms.stats().per_core[0].evictions, 0);
        // block 32 must still be resident:
        assert_eq!(ms.access(0, 33, false), AccessOutcome::Hit);
    }

    #[test]
    fn reset_clears_everything() {
        let mut ms = machine(2, 64, 32);
        ms.access(0, 0, true);
        ms.access(1, 0, true);
        ms.reset();
        let t = ms.stats().total();
        assert_eq!(t.accesses(), 0);
        assert_eq!(ms.block_transfers(0), 0);
        assert_eq!(ms.access(0, 0, false), AccessOutcome::Miss(MissKind::Cold));
    }

    #[test]
    fn shared_l2_serves_invalidated_refills_cheaply() {
        // Shared L2: after a coherence invalidation, the victim refills
        // from L2 at the cheap cost (1 + b), not the memory cost.
        let cfg = MachineConfig::new(2, 64, 32).with_l2(1 << 10, false);
        let mut ms = MemSystem::new(cfg);
        let (_, c0) = ms.access_costed(0, 0, false); // L1+L2 miss -> memory
        assert_eq!(c0, 1 + cfg.miss_cost);
        ms.access(1, 0, true); // invalidates core 0's L1 copy
        let (o, c1) = ms.access_costed(0, 0, false); // block miss, L2 hit
        assert!(o.is_block_miss());
        assert_eq!(c1, 1 + cfg.l2.unwrap().hit_cost);
        assert_eq!(ms.stats().per_core[0].l2_hits, 1);
    }

    #[test]
    fn partitioned_l2_segments_are_invalidated_too() {
        let cfg = MachineConfig::new(2, 64, 32).with_l2(1 << 10, true);
        let mut ms = MemSystem::new(cfg);
        ms.access(0, 0, false);
        ms.access(1, 0, true); // kills core 0's L1 AND its L2 segment copy
        let (o, c) = ms.access_costed(0, 0, false);
        assert!(o.is_block_miss());
        assert_eq!(c, 1 + cfg.miss_cost); // segment copy was invalidated
        assert_eq!(ms.stats().per_core[0].l2_misses, 2);
    }

    #[test]
    fn l2_captures_capacity_spill() {
        // Working set bigger than L1 but within L2: repeated sweeps hit L2.
        let cfg = MachineConfig::new(1, 64, 32).with_l2(1 << 10, false);
        let mut ms = MemSystem::new(cfg);
        for pass in 0..2 {
            for blk in 0..4u64 {
                let (_, cost) = ms.access_costed(0, blk * 32, false);
                if pass == 1 {
                    assert_eq!(cost, 1 + cfg.l2.unwrap().hit_cost, "second pass hits L2");
                }
            }
        }
        let s = ms.stats().per_core[0];
        assert_eq!(s.l2_misses, 4);
        assert_eq!(s.l2_hits, 4);
    }

    #[test]
    fn flat_machine_costs_unchanged() {
        let cfg = MachineConfig::new(1, 64, 32);
        let mut ms = MemSystem::new(cfg);
        let (_, miss) = ms.access_costed(0, 0, false);
        let (_, hit) = ms.access_costed(0, 1, false);
        assert_eq!(miss, 1 + cfg.miss_cost);
        assert_eq!(hit, 1);
    }

    #[test]
    fn transfers_count_every_fetch() {
        let mut ms = machine(2, 64, 32);
        ms.access(0, 0, false); // 1
        ms.access(1, 0, false); // 2
        ms.access(1, 0, true); // hit, no transfer, invalidates core 0
        ms.access(0, 0, false); // 3 (block miss)
        assert_eq!(ms.block_transfers(0), 3);
        assert_eq!(ms.stats().block_transfers, 3);
    }
}
