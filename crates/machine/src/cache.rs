//! A single private cache with true LRU replacement.
//!
//! The paper assumes an optimal replacement policy but notes "LRU suffices
//! for our algorithms" (§1). We implement exact LRU over block frames:
//! `M / B` frames, each holding one block.

use std::collections::{BTreeMap, HashMap};

use crate::BlockId;

/// A fully-associative LRU cache of block frames.
///
/// Implemented as a `HashMap` from block to a monotone recency stamp plus a
/// `BTreeMap` from stamp to block, giving `O(log frames)` per operation and
/// fully deterministic behaviour.
#[derive(Debug, Clone)]
pub struct LruCache {
    frames: usize,
    stamp_of: HashMap<BlockId, u64>,
    by_stamp: BTreeMap<u64, BlockId>,
    tick: u64,
}

impl LruCache {
    /// A cache with capacity for `frames` blocks (`frames >= 1`).
    pub fn new(frames: usize) -> Self {
        assert!(frames >= 1, "cache must have at least one frame");
        Self {
            frames,
            stamp_of: HashMap::with_capacity(frames * 2),
            by_stamp: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Number of block frames.
    pub fn capacity(&self) -> usize {
        self.frames
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.stamp_of.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.stamp_of.is_empty()
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: BlockId) -> bool {
        self.stamp_of.contains_key(&block)
    }

    /// Mark `block` as most recently used. Returns `false` if not resident.
    pub fn touch(&mut self, block: BlockId) -> bool {
        let Some(stamp) = self.stamp_of.get_mut(&block) else {
            return false;
        };
        self.by_stamp.remove(stamp);
        self.tick += 1;
        *stamp = self.tick;
        self.by_stamp.insert(self.tick, block);
        true
    }

    /// Bring `block` in as most recently used, evicting the LRU block if the
    /// cache is full. Returns the evicted block, if any.
    ///
    /// Panics if `block` is already resident (callers must `touch` instead).
    pub fn insert(&mut self, block: BlockId) -> Option<BlockId> {
        assert!(
            !self.contains(block),
            "insert of resident block {block}; use touch"
        );
        let evicted = if self.stamp_of.len() == self.frames {
            let (&stamp, &victim) = self
                .by_stamp
                .iter()
                .next()
                .expect("full cache has an LRU entry");
            self.by_stamp.remove(&stamp);
            self.stamp_of.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.tick += 1;
        self.stamp_of.insert(block, self.tick);
        self.by_stamp.insert(self.tick, block);
        evicted
    }

    /// Remove `block` (a coherence invalidation). Returns whether it was
    /// resident.
    pub fn invalidate(&mut self, block: BlockId) -> bool {
        match self.stamp_of.remove(&block) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                true
            }
            None => false,
        }
    }

    /// Drop every resident block (used when resetting the machine).
    pub fn clear(&mut self) {
        self.stamp_of.clear();
        self.by_stamp.clear();
    }

    /// Iterator over resident blocks (unordered).
    pub fn resident(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.stamp_of.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert!(c.touch(1)); // order now: 2 (LRU), 1 (MRU)
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn invalidate_frees_a_frame() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert_eq!(c.insert(3), None); // no eviction needed
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn touch_missing_is_noop() {
        let mut c = LruCache::new(1);
        assert!(!c.touch(42));
        c.insert(42);
        assert!(c.touch(42));
    }

    #[test]
    fn single_frame_cache_thrashes() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.insert(3), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        for b in 0..4 {
            c.insert(b);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.insert(9), None);
    }

    /// Exhaustive differential test against a naive Vec-based LRU model.
    #[test]
    fn matches_reference_model() {
        use std::collections::VecDeque;
        let frames = 4;
        let mut c = LruCache::new(frames);
        // Reference: VecDeque front = LRU, back = MRU.
        let mut model: VecDeque<BlockId> = VecDeque::new();
        // Deterministic pseudo-random access stream.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let block = (x >> 33) % 9; // 9 blocks, 4 frames -> plenty of evictions
            let op = (x >> 20) % 3;
            match op {
                0 | 1 => {
                    // access: touch or insert
                    if let Some(pos) = model.iter().position(|&b| b == block) {
                        model.remove(pos);
                        model.push_back(block);
                        assert!(c.touch(block), "model has {block}, cache must too");
                    } else {
                        let expect_evict = if model.len() == frames {
                            model.pop_front()
                        } else {
                            None
                        };
                        model.push_back(block);
                        assert_eq!(c.insert(block), expect_evict);
                    }
                }
                _ => {
                    let in_model = model.iter().position(|&b| b == block);
                    if let Some(pos) = in_model {
                        model.remove(pos);
                    }
                    assert_eq!(c.invalidate(block), in_model.is_some());
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
