//! # hbp-machine — simulated multicore memory system
//!
//! This crate implements the machine model of Cole & Ramachandran,
//! *"Efficient Resource Oblivious Algorithms for Multicores with False
//! Sharing"* (IPDPS 2012; arXiv:1103.4071, §1–§2):
//!
//! * `p` cores, each with a **private cache** of `M` words, managed LRU;
//! * data organized in **blocks** of `B` words; an arbitrarily large shared
//!   memory behind the caches;
//! * a **write-invalidate coherence protocol**: when core `C'` writes into a
//!   block `β` held by core `C`, the copy of `β` in `C`'s cache is
//!   invalidated, and `C`'s next access to `β` misses — a **block miss**
//!   (the paper's generalization of false sharing);
//! * every miss costs `b` time units; space is allocated in block-sized
//!   units so allocations to different requesters never share a block (§2.2).
//!
//! The crate is a pure, deterministic state machine: feed it a sequence of
//! `(core, address, read/write)` accesses and it reports, per core, how many
//! were hits, **cold** misses, **capacity** misses, and **coherence (block)
//! misses**, plus per-block transfer counts (the paper's *block delay*,
//! Definition 2.2). The scheduler crate (`hbp-sched`) drives it at
//! per-access granularity.

pub mod alloc;
pub mod cache;
pub mod config;
pub mod stats;
pub mod system;

pub use alloc::BlockAllocator;
pub use cache::LruCache;
pub use config::MachineConfig;
pub use stats::{AccessOutcome, CoreStats, MachineStats, MissKind};
pub use system::MemSystem;

/// A word address in the simulated global memory.
pub type Word = u64;

/// A block identifier: `addr / B`.
pub type BlockId = u64;
