//! Root crate of the `hbp-repro` workspace.
//!
//! The actual library lives in the sub-crates (see `crates/`); this crate
//! exists to host the cross-crate integration tests in `tests/` and the
//! runnable examples in `examples/`. It re-exports the facade crate so that
//! examples and tests have a single import root.

pub use hbp_core::*;

/// Problem size for the runnable examples: the example's default, unless
/// the `HBP_EXAMPLE_N` environment variable overrides it. The smoke test
/// in `tests/examples_smoke.rs` uses this to run every example on tiny
/// inputs; interactive runs are unaffected.
pub fn example_size(default: usize) -> usize {
    match std::env::var("HBP_EXAMPLE_N") {
        Ok(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => panic!("HBP_EXAMPLE_N must be a positive integer, got {s:?}"),
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn example_size_respects_env_or_default() {
        // Robust to an ambient HBP_EXAMPLE_N: whatever is (or isn't) set
        // must be what the helper returns.
        match std::env::var("HBP_EXAMPLE_N") {
            Ok(v) => assert_eq!(super::example_size(64), v.parse::<usize>().unwrap()),
            Err(_) => assert_eq!(super::example_size(64), 64),
        }
    }
}
