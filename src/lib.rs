//! Root crate of the `hbp-repro` workspace.
//!
//! The actual library lives in the sub-crates (see `crates/`); this crate
//! exists to host the cross-crate integration tests in `tests/` and the
//! runnable examples in `examples/`. It re-exports the facade crate so that
//! examples and tests have a single import root.

pub use hbp_core::*;
